// Batched request server: many client threads submit single-node
// classification queries; a dispatcher coalesces them into batches under a
// latency budget and drains the batches on util/thread_pool workers, each
// owning a private InferenceEngine (engines hold mutable workspaces and
// are single-threaded by design — the graph, features and souped weights
// are shared read-only across all of them).
//
// This is the serving half of the paper's economics: Phase 1/2 produce ONE
// souped model, so the request path is pure inference — batching exists to
// amortise the per-query L-hop neighbourhood expansion (overlapping
// neighbourhoods are computed once per batch instead of once per query).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace gsoup::serve {

struct ServerConfig {
  /// Worker threads (and private engines) draining batches.
  std::size_t workers = 2;
  /// Maximum queries coalesced into one batch.
  std::int64_t max_batch = 64;
  /// Latency budget: a partial batch is flushed once its oldest query has
  /// waited this long.
  double max_delay_ms = 2.0;
  QueryMode mode = QueryMode::kSubgraph;
  /// kSubgraph mode: number of per-batch L-hop subgraph plans kept in an
  /// LRU, keyed by the batch's node-id sequence. Skewed query
  /// distributions repeat batches (hot nodes, retry storms, single-node
  /// batches of celebrities), and a hit skips the whole expansion — the
  /// worker executes the cached plan directly. 0 disables the cache
  /// (plans can hold an L-hop neighbourhood each, so capacity is an
  /// explicit memory decision; hit/miss counters are in ServerStats).
  std::size_t plan_cache_capacity = 0;
};

/// One answered query.
struct Prediction {
  std::int64_t node = -1;
  std::int32_t label = -1;  ///< argmax class
  float score = 0.0f;       ///< logit of the argmax class
};

/// Aggregate serving statistics. Counts and max latency cover the
/// server's whole lifetime; the percentiles are computed over a bounded
/// window of the most recent queries (kLatencyWindow) so a long-lived
/// server's stats stay O(1) in memory and stats() stays cheap.
struct ServerStats {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Subgraph-plan LRU counters (plan_cache_capacity > 0): a hit means a
  /// batch reused a cached L-hop expansion instead of rebuilding it.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
};

class BatchServer {
 public:
  /// The snapshot provides config + weights; `ctx` must wrap the serving
  /// graph for the snapshot's architecture; `features` is the node feature
  /// matrix (shared across workers, never copied per engine).
  BatchServer(const Snapshot& snapshot,
              std::shared_ptr<const GraphContext> ctx, Tensor features,
              ServerConfig config = {});
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueue one node query; the future resolves when its batch drains.
  /// Out-of-range ids throw CheckError here, synchronously, so one bad
  /// request can never fail the batch it would have been coalesced into.
  std::future<Prediction> submit(std::int64_t node);

  /// Block until every query submitted so far has been answered. Any
  /// waiting partial batch is dispatched immediately rather than sitting
  /// out its latency budget.
  void drain();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::int64_t node;
    std::promise<Prediction> promise;
    Clock::time_point enqueued;
  };

  /// Per-worker context: a private engine plus reusable batch buffers so
  /// steady-state batches perform no tracked allocation.
  struct Worker {
    explicit Worker(std::unique_ptr<InferenceEngine> e)
        : engine(std::move(e)) {}
    std::unique_ptr<InferenceEngine> engine;
    std::vector<std::int64_t> node_ids;
    Tensor logits;  ///< [max_batch, out_dim]
  };

  void dispatcher_loop();
  void run_batch(std::vector<Pending> batch);
  Worker* acquire_worker();
  void release_worker(Worker* w);

  /// LRU lookup for a batch's node sequence; counts a hit or miss.
  /// Returns nullptr on miss (the caller compiles and store_plan()s).
  std::shared_ptr<const exec::SubgraphPlan> lookup_plan(
      const std::vector<std::int64_t>& key);
  void store_plan(const std::vector<std::int64_t>& key,
                  std::shared_ptr<const exec::SubgraphPlan> plan);

  ServerConfig config_;
  std::int64_t out_dim_ = 0;
  std::int64_t num_nodes_ = 0;

  /// kCachedFull mode: the full-graph logits, computed ONCE at
  /// construction by a throwaway engine and shared immutably by every
  /// batch worker (a query is then a row lookup). Per-worker engines —
  /// and their duplicated workspaces — exist only in kSubgraph mode.
  Tensor cached_logits_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<Worker*> free_workers_;
  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Deque, not vector: batches are dispatched from the front while
  /// clients append at the back; popping the front of a long backlog must
  /// not shift every queued promise under the submit mutex.
  std::deque<Pending> pending_;
  bool stop_ = false;
  bool flush_ = false;  ///< drain() in progress: dispatch partial batches
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::condition_variable drained_cv_;

  /// Latency samples kept for the percentile window (~512 KiB at 8 B
  /// each); older samples are overwritten ring-buffer style.
  static constexpr std::size_t kLatencyWindow = 1 << 16;

  mutable std::mutex stats_mutex_;
  std::uint64_t batches_ = 0;
  std::uint64_t queries_answered_ = 0;
  double max_latency_ms_ = 0.0;
  std::vector<double> latencies_ms_;  ///< ring buffer, ≤ kLatencyWindow
  std::size_t latency_next_ = 0;      ///< overwrite cursor once full

  /// Subgraph-plan LRU (plan_cache_capacity > 0, kSubgraph mode):
  /// most-recent at the list front, keyed by the exact node-id sequence
  /// of the batch (seed_row mapping depends on order, so sequence — not
  /// set — identity is required for correctness anyway). Plans are
  /// immutable and engine-independent, so any worker executes a hit.
  struct PlanKeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& key) const {
      std::size_t h = 1469598103934665603ull;  // FNV-1a
      for (const auto v : key) {
        h = (h ^ static_cast<std::size_t>(v)) * 1099511628211ull;
      }
      return h;
    }
  };
  using PlanLru = std::list<std::pair<std::vector<std::int64_t>,
                                      std::shared_ptr<const exec::SubgraphPlan>>>;
  mutable std::mutex plan_cache_mutex_;
  PlanLru plan_lru_;
  std::unordered_map<std::vector<std::int64_t>, PlanLru::iterator,
                     PlanKeyHash>
      plan_cache_;
  std::uint64_t plan_cache_hits_ = 0;
  std::uint64_t plan_cache_misses_ = 0;
};

}  // namespace gsoup::serve
