// Batched request server: many client threads submit single-node
// classification queries; a dispatcher coalesces them into batches under a
// latency budget and drains the batches on util/thread_pool workers, each
// owning a private InferenceEngine (engines hold mutable workspaces and
// are single-threaded by design — the graph, features and souped weights
// are shared read-only across all of them).
//
// This is the serving half of the paper's economics: Phase 1/2 produce ONE
// souped model, so the request path is pure inference — batching exists to
// amortise the per-query L-hop neighbourhood expansion (overlapping
// neighbourhoods are computed once per batch instead of once per query).
//
// Failure semantics (see docs/ARCHITECTURE.md "Failure semantics &
// overload"): every submit resolves to a QueryResult — either a Prediction
// or a ServeError — and the server degrades explicitly instead of
// degrading silently:
//  - admission control: the pending queue is bounded (max_pending); a
//    burst beyond it either rejects the new query (kRejectNew) or sheds
//    the oldest queued one (kShedOldest), both surfaced as kOverloaded
//    and counted in ServerStats::rejected, so overload costs O(1) memory;
//  - deadlines: a query carrying a deadline (server default or per-submit
//    override) that expires before dispatch is failed kDeadlineExceeded
//    without touching an engine — shed load is cheap load;
//  - worker isolation: an engine that throws mid-batch fails only that
//    batch's queries (kExecFailed), increments failed_batches, and the
//    worker's engine is rebuilt from the retained snapshot state before
//    the worker re-enters the free pool — a poisoned workspace can't leak
//    into the next batch;
//  - two-phase shutdown: the destructor first closes intake (submits
//    resolve kShutdown immediately), then either drains the queue
//    (drain_on_shutdown, default) or fails pending queries fast — every
//    promise is always resolved, never a broken-promise abort.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace gsoup::serve {

/// What the server does with a submit that finds the pending queue full.
enum class AdmissionPolicy {
  kRejectNew,   ///< fail the incoming query with kOverloaded
  kShedOldest,  ///< evict the oldest queued query, admit the new one
};

struct ServerConfig {
  /// Worker threads (and private engines) draining batches.
  std::size_t workers = 2;
  /// Maximum queries coalesced into one batch.
  std::int64_t max_batch = 64;
  /// Latency budget: a partial batch is flushed once its oldest query has
  /// waited this long.
  double max_delay_ms = 2.0;
  QueryMode mode = QueryMode::kSubgraph;
  /// kSubgraph mode: number of per-batch L-hop subgraph plans kept in an
  /// LRU, keyed by the batch's node-id sequence. Skewed query
  /// distributions repeat batches (hot nodes, retry storms, single-node
  /// batches of celebrities), and a hit skips the whole expansion — the
  /// worker executes the cached plan directly. 0 disables the cache
  /// (plans can hold an L-hop neighbourhood each, so capacity is an
  /// explicit memory decision; hit/miss counters are in ServerStats).
  std::size_t plan_cache_capacity = 0;
  /// Admission control: the pending queue never grows past this many
  /// queries; beyond it, `admission` decides who pays. Must be >= 1.
  std::size_t max_pending = 4096;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  /// Deadline applied to every submit that does not carry its own
  /// override. <= 0 disables. Expiry is enforced at dispatch: an expired
  /// query is failed kDeadlineExceeded instead of computed.
  double default_deadline_ms = 0.0;
  /// Destructor behaviour for queries still queued when intake closes:
  /// true drains them through the engines, false fails them kShutdown.
  bool drain_on_shutdown = true;
  /// Storage precision of the serving stack (docs/ARCHITECTURE.md
  /// "Precision lowering"): kFp16/kBf16 stores the feature matrix, the
  /// executor weight panels and inter-layer activations — and in
  /// kCachedFull mode the shared answer table — at half width, with fp32
  /// accumulation everywhere. The query/prediction interface is
  /// unchanged.
  Precision precision = Precision::kFp32;
  /// Optional pre-quantized feature matrix (must match `precision`;
  /// plan-space rows when the context reorders vertices). When set, the
  /// server and every worker engine share its storage instead of
  /// quantizing a private copy — the sharded router quantizes each
  /// shard's slice ONCE and its R replicas all serve from it.
  std::shared_ptr<const HalfBuffer> half_features;

  // --- Sharded-serving hooks (set by serve::ShardedServer for its
  // per-shard inner servers; the defaults are plain single-server
  // behaviour) ---

  /// Registry metric-name prefix: this server registers
  /// `<metric_prefix>submitted` and friends. Shard servers use
  /// "serve.shard." so per-shard series never pollute the aggregate
  /// single-server families.
  std::string metric_prefix = "serve.";
  /// Pre-rendered Prometheus label body attached to every metric this
  /// server registers (e.g. `shard="3"`). Empty = unlabelled.
  std::string metric_labels;
  /// When set, Prediction::node reports `(*report_ids)[node]` instead of
  /// the submitted id — the id-translation boundary that lets a shard
  /// server accept shard-local ids yet answer in the caller's global
  /// numbering. Size must cover [0, num_nodes).
  std::shared_ptr<const std::vector<std::int64_t>> report_ids;
  /// When set, installed on every worker engine (including isolation
  /// rebuilds) via InferenceEngine::set_row_guard: flags (caller
  /// numbering) marking rows that are faithful copies of the full
  /// graph's. Queries whose expansion walks an unflagged row fail their
  /// batch instead of silently aggregating over a truncated row.
  std::shared_ptr<const std::vector<std::uint8_t>> row_guard;
  /// When non-empty, an EXTRA failpoint evaluated per batch right next to
  /// "serve.batch_exec", under this name. The replicated router names one
  /// per replica ("serve.replica_exec.s<K>.r<J>") so a chaos schedule can
  /// kill and revive a single replica while its siblings keep serving.
  std::string exec_failpoint;
};

/// One answered query.
struct Prediction {
  std::int64_t node = -1;
  std::int32_t label = -1;  ///< argmax class
  float score = 0.0f;       ///< logit of the argmax class
  /// Served from the router's precomputed stale-fallback table
  /// (DegradedPolicy::kServeStale with every replica of the owner shard
  /// down) instead of a live engine. The answer is still bit-exact for a
  /// frozen model, but it did not observe the live serving path.
  bool stale = false;
};

/// Why a query did NOT produce a Prediction.
enum class ServeErrorCode : std::uint8_t {
  kOverloaded,         ///< admission control shed it (queue full)
  kDeadlineExceeded,   ///< its deadline passed before dispatch
  kExecFailed,         ///< its batch's engine threw; batch isolated
  kShutdown,           ///< server stopped before it could be answered
  kReplicasExhausted,  ///< replicated router: failover ran out of live
                       ///< replicas (or the whole shard is down under
                       ///< DegradedPolicy::kFailShardQueries)
};

const char* serve_error_name(ServeErrorCode code);

struct ServeError {
  ServeErrorCode code = ServeErrorCode::kExecFailed;
  std::string message;
};

/// Value-or-error result every submitted query resolves to. Shed load and
/// failed execution are ordinary values — futures never carry exceptions,
/// so one poisoned batch cannot terminate a client that forgot a try.
class QueryResult {
 public:
  QueryResult() = default;  ///< error state, "unresolved"

  static QueryResult success(const Prediction& pred) {
    QueryResult r;
    r.ok_ = true;
    r.pred_ = pred;
    return r;
  }
  static QueryResult failure(ServeErrorCode code, std::string message) {
    QueryResult r;
    r.ok_ = false;
    r.error_ = ServeError{code, std::move(message)};
    return r;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  /// The prediction; throws CheckError if this is an error result (the
  /// caller skipped the ok() check).
  const Prediction& value() const;
  /// The error; throws CheckError if this is a success result.
  const ServeError& error() const;

 private:
  bool ok_ = false;
  Prediction pred_;
  ServeError error_{ServeErrorCode::kShutdown, "unresolved"};
};

/// Aggregate serving statistics. Everything — counts, mean, max AND the
/// percentiles — covers the server's whole lifetime: latency lives in an
/// obs::HistogramData (fixed log-scale buckets, O(1) memory), so the
/// percentiles describe the same full population as the counts instead
/// of a recent-samples window, at bucket resolution (~10% with the
/// default 12-buckets-per-decade spec). The same observations are
/// mirrored into the process-global metrics registry ("serve.latency_ms"
/// etc.), so exported metrics and stats() agree by construction.
///
/// Accounting: every query admitted to the queue (`submitted`) resolves
/// into exactly one of queries / deadline_expired / failed_queries /
/// shutdown_failed / the shed share of rejected. Queries refused at the
/// door (kRejectNew) appear in `rejected` only.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< admitted to the pending queue
  std::uint64_t queries = 0;    ///< answered with a Prediction
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Queries shed by admission control (rejected at the door or evicted
  /// by kShedOldest) — all resolved kOverloaded.
  std::uint64_t rejected = 0;
  /// Queries failed kDeadlineExceeded at dispatch.
  std::uint64_t deadline_expired = 0;
  /// Batches whose execution threw (engine rebuilt afterwards).
  std::uint64_t failed_batches = 0;
  /// Queries resolved kExecFailed (members of failed batches).
  std::uint64_t failed_queries = 0;
  /// Queries resolved kShutdown (intake closed / fail-fast teardown).
  std::uint64_t shutdown_failed = 0;
  /// Client-side retries reported via record_retries (e.g. by
  /// serve::loadgen) — degradation visible from the server's own stats.
  std::uint64_t retries_observed = 0;
  /// Subgraph-plan LRU counters (plan_cache_capacity > 0): a hit means a
  /// batch reused a cached L-hop expansion instead of rebuilding it.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
};

class BatchServer {
 public:
  /// The snapshot provides config + weights; `ctx` must wrap the serving
  /// graph for the snapshot's architecture; `features` is the node feature
  /// matrix (shared across workers, never copied per engine). The server
  /// retains the snapshot's config and (storage-shared) parameters so a
  /// poisoned worker engine can be rebuilt without the caller's Snapshot.
  BatchServer(const Snapshot& snapshot,
              std::shared_ptr<const GraphContext> ctx, Tensor features,
              ServerConfig config = {});
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueue one node query under the server's default deadline; the
  /// future resolves when its batch drains (or it is shed / expired /
  /// failed — always to a QueryResult, never an exception). Out-of-range
  /// ids still throw CheckError here, synchronously: a malformed id is a
  /// caller bug, not load. After shutdown begins, returns an
  /// already-resolved kShutdown result.
  std::future<QueryResult> submit(std::int64_t node);

  /// Same, with a per-query deadline override (milliseconds from now;
  /// <= 0 means no deadline, ignoring the server default).
  std::future<QueryResult> submit(std::int64_t node, double deadline_ms);

  /// Block until every admitted query has been resolved. Any waiting
  /// partial batch is dispatched immediately rather than sitting out its
  /// latency budget.
  void drain();

  /// Client-side retry telemetry (see ServerStats::retries_observed).
  void record_retries(std::uint64_t n);

  /// Copy of the server's full-lifetime latency distribution (answered
  /// queries only). Callers wanting per-run percentiles (serve::loadgen)
  /// diff two snapshots with obs::HistogramData::delta_since.
  obs::HistogramData latency_snapshot() const;

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::int64_t node = 0;
    std::promise<QueryResult> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< meaningful iff has_deadline
    std::uint64_t qid = 0;       ///< trace-timeline id (unique per submit)
    std::uint8_t phase = 0;      ///< open trace phase (index into names)
    bool has_deadline = false;
    bool resolved = false;  ///< promise satisfied (exactly-once guard)
  };

  /// Shared ownership wrapper for a dispatched batch: if the pool task is
  /// destroyed without running (a pool.task failpoint fired, or teardown
  /// raced), the destructor fails every unresolved promise instead of
  /// breaking it.
  struct BatchTask {
    BatchServer* server = nullptr;
    std::vector<Pending> batch;
    ~BatchTask() {
      if (server != nullptr) {
        server->fail_queries(batch, ServeErrorCode::kExecFailed,
                             "batch aborted before completion");
        server->batch_done();
      }
    }
  };

  /// Per-worker context: a private engine plus reusable batch buffers so
  /// steady-state batches perform no tracked allocation.
  struct Worker {
    explicit Worker(std::unique_ptr<InferenceEngine> e)
        : engine(std::move(e)) {}
    std::unique_ptr<InferenceEngine> engine;
    std::vector<std::int64_t> node_ids;
    Tensor logits;  ///< [max_batch, out_dim]
  };

  void dispatcher_loop();
  void run_batch(std::vector<Pending>& batch);
  /// One dispatched batch finished (or aborted); frees an in-flight slot.
  void batch_done();
  Worker* acquire_worker();
  void release_worker(Worker* w);
  std::unique_ptr<InferenceEngine> build_worker_engine() const;

  /// Resolve one admitted query with `result` and account it completed.
  void finish_query(Pending& p, QueryResult result);
  /// Resolve every unresolved entry with a `code` error (batch-abort and
  /// fail-fast-shutdown path; counts per code).
  void fail_queries(std::vector<Pending>& batch, ServeErrorCode code,
                    const char* message);

  /// Per-query trace timeline: async spans keyed by qid, one
  /// whole-lifecycle "serve.query" span plus the phase chain
  /// serve.pending -> serve.queue_wait -> serve.exec. All three are
  /// no-ops (one relaxed load) unless obs::trace is enabled.
  void trace_begin(Pending& p);
  void trace_advance(Pending& p, std::uint8_t next_phase);
  void trace_end(Pending& p);

  /// LRU lookup for a batch's node sequence; counts a hit or miss.
  /// Returns nullptr on miss (the caller compiles and store_plan()s).
  std::shared_ptr<const exec::SubgraphPlan> lookup_plan(
      const std::vector<std::int64_t>& key);
  void store_plan(const std::vector<std::int64_t>& key,
                  std::shared_ptr<const exec::SubgraphPlan> plan);

  ServerConfig config_;
  std::int64_t out_dim_ = 0;
  std::int64_t num_nodes_ = 0;

  /// Worker-engine rebuild state: the snapshot's config and parameter
  /// store (tensors storage-shared with the source snapshot), the shared
  /// (possibly plan-space) feature tensor and its space tag, and the
  /// context. Together these are exactly the InferenceEngine constructor
  /// arguments, so isolation can replace a poisoned engine in place.
  ModelConfig snap_config_;
  ParamStore snap_params_;
  std::shared_ptr<const GraphContext> ctx_;
  Tensor worker_features_;
  /// Half precision: the one half-width feature slice every worker
  /// engine shares (config-provided or quantized here once); the fp32
  /// worker_features_ handle is dropped after quantization.
  std::shared_ptr<const HalfBuffer> half_features_;
  FeatureSpace feature_space_ = FeatureSpace::kOriginal;

  /// kCachedFull mode: the full-graph logits, computed ONCE at
  /// construction by a throwaway engine and shared immutably by every
  /// batch worker (a query is then a row lookup). Per-worker engines —
  /// and their duplicated workspaces — exist only in kSubgraph mode.
  /// Half precision stores the table quantized instead (rows widen at
  /// answer time), so only one of the two is ever defined.
  Tensor cached_logits_;
  HalfBuffer cached_logits_half_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<Worker*> free_workers_;
  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread dispatcher_;

  /// In-flight (dispatched, unfinished) batch count, bounded to the
  /// worker count by the dispatcher. Without this bound the dispatcher
  /// would instantly park the whole backlog in the pool's unbounded task
  /// queue, emptying pending_ and making max_pending meaningless —
  /// admission control has to see the queue the server actually has.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Deque, not vector: batches are dispatched from the front while
  /// clients append at the back; popping the front of a long backlog must
  /// not shift every queued promise under the submit mutex.
  std::deque<Pending> pending_;
  bool stop_ = false;  ///< intake closed; dispatcher winding down
  bool flush_ = false;  ///< drain() in progress: dispatch partial batches
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::condition_variable drained_cv_;
  std::atomic<std::uint64_t> next_qid_{1};

  /// Degradation counters: atomics, not stats_mutex_, so admission and
  /// failure paths never contend with the latency bookkeeping.
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> failed_batches_{0};
  std::atomic<std::uint64_t> failed_queries_{0};
  std::atomic<std::uint64_t> shutdown_failed_{0};
  std::atomic<std::uint64_t> retries_observed_{0};

  mutable std::mutex stats_mutex_;
  std::uint64_t batches_ = 0;
  std::uint64_t queries_answered_ = 0;
  /// Full-lifetime latency distribution of THIS server's answered
  /// queries (plain buckets, guarded by stats_mutex_): the source of
  /// stats()'s percentiles/mean/max. The same observations are mirrored
  /// into the process-global "serve.latency_ms" registry histogram,
  /// which aggregates across servers for export.
  obs::HistogramData latency_data_;

  /// Registry handles, resolved once at construction (the exported
  /// mirrors of the local counters above; full metric catalogue in
  /// docs/ARCHITECTURE.md "Observability").
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_deadline_expired_ = nullptr;
  obs::Counter* m_failed_batches_ = nullptr;
  obs::Counter* m_failed_queries_ = nullptr;
  obs::Counter* m_shutdown_failed_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Gauge* m_pending_depth_ = nullptr;
  obs::Histogram* m_latency_hist_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;

  /// Subgraph-plan LRU (plan_cache_capacity > 0, kSubgraph mode):
  /// most-recent at the list front, keyed by the exact node-id sequence
  /// of the batch (seed_row mapping depends on order, so sequence — not
  /// set — identity is required for correctness anyway). Plans are
  /// immutable and engine-independent, so any worker executes a hit.
  struct PlanKeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& key) const {
      std::size_t h = 1469598103934665603ull;  // FNV-1a
      for (const auto v : key) {
        h = (h ^ static_cast<std::size_t>(v)) * 1099511628211ull;
      }
      return h;
    }
  };
  using PlanLru = std::list<std::pair<std::vector<std::int64_t>,
                                      std::shared_ptr<const exec::SubgraphPlan>>>;
  mutable std::mutex plan_cache_mutex_;
  PlanLru plan_lru_;
  std::unordered_map<std::vector<std::int64_t>, PlanLru::iterator,
                     PlanKeyHash>
      plan_cache_;
  std::uint64_t plan_cache_hits_ = 0;
  std::uint64_t plan_cache_misses_ = 0;
};

}  // namespace gsoup::serve
