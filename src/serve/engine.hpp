// Autograd-free inference engine.
//
// Training and evaluation run the model through the ag:: tape — every
// forward allocates a Value node, output tensor and closure per op, even
// under NoGradGuard. Serving cannot afford that: this engine executes the
// architecture's forward directly on Tensor through the same kernels the
// tape wraps (blocked GEMM, edge-balanced fused SpMM, shared GAT attention
// forward), into per-layer workspaces preallocated at construction. After
// construction, neither full-graph passes nor batched node queries perform
// any tracked heap allocation — the property tests/test_serve.cpp asserts
// via MemoryTracker.
//
// Two query paths:
//  - full_logits(): one forward over the whole graph, cached until
//    invalidate(). Row lookups are then free — the right mode for static
//    feature serving.
//  - query(nodes, out): exact L-hop subgraph inference. The engine expands
//    the queried nodes' full L-hop in-neighbourhood into bipartite
//    block-local CSRs (destinations are a prefix of sources, the sampling
//    layer's convention) carrying the architecture's normalisation weights,
//    then runs the layer stack over just those rows. Exact for all three
//    architectures — GAT's edge softmax sees every in-edge of each
//    destination — and far cheaper than a full pass when the batch's
//    neighbourhood is a fraction of the graph.
//
// An engine is deliberately single-threaded (the workspaces are reused
// mutable state); the batch server owns one engine per worker.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/graph_context.hpp"
#include "nn/model.hpp"
#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace gsoup::serve {

/// How query() answers: exact L-hop subgraph recomputation per batch, or
/// row lookups into the cached full-graph logits.
enum class QueryMode { kSubgraph, kCachedFull };

/// Which vertex numbering the constructor's `features` rows use.
/// kOriginal (the default) is the caller's numbering; on an active
/// GraphPlan context the engine then permutes a private copy. kPlan says
/// the rows are already plan-ordered — the BatchServer permutes once and
/// shares that copy across all of its workers' engines.
enum class FeatureSpace { kOriginal, kPlan };

class InferenceEngine {
 public:
  /// `ctx` must wrap the serving graph for `config.arch` and outlive the
  /// engine; `features` is the [num_nodes, in_dim] feature matrix (shared
  /// storage, not copied). `params` tensors are shared, not copied — the
  /// snapshot (or training run) that produced them must stay alive.
  ///
  /// Locality: when `ctx` carries an active GraphPlan (reordered vertex
  /// numbering), the engine is the translation boundary — `features`,
  /// query node ids and all returned logits stay in the caller's original
  /// numbering. The engine permutes a private feature copy once at
  /// construction, runs every forward in plan space over the context's
  /// cached layouts, and maps ids/rows at the edges.
  InferenceEngine(const ModelConfig& config, const ParamStore& params,
                  std::shared_ptr<const GraphContext> ctx, Tensor features,
                  QueryMode mode = QueryMode::kSubgraph,
                  FeatureSpace feature_space = FeatureSpace::kOriginal);

  const ModelConfig& config() const { return model_.config(); }
  QueryMode mode() const { return mode_; }
  std::int64_t num_nodes() const { return num_nodes_; }

  /// Class logits for every node, [num_nodes, out_dim]. Computed on first
  /// call and cached; invalidate() forces recomputation (e.g. after the
  /// shared feature storage was mutated in place).
  const Tensor& full_logits();
  void invalidate() { full_valid_ = false; }

  /// Logits for a batch of node ids, written to the corresponding rows of
  /// `out` ([nodes.size(), out_dim], caller-allocated). Duplicate ids are
  /// fine (they share the computation). Row order matches `nodes`.
  void query(std::span<const std::int64_t> nodes, Tensor& out);

  /// Argmax class of one node (single-query convenience).
  std::int32_t predict(std::int64_t node);

  /// Total bytes of preallocated workspace (capacity planning).
  std::size_t workspace_bytes() const;

 private:
  /// One bipartite layer of a query's L-hop expansion plan. Destination
  /// nodes are a prefix of source nodes; indices are positions into the
  /// layer's own src list. All vectors are reused across queries (cleared,
  /// never shrunk), so steady-state queries do not allocate.
  struct LayerPlan {
    std::vector<std::int64_t> src_nodes;
    std::int64_t num_dst = 0;
    std::vector<std::int64_t> indptr;
    std::vector<std::int32_t> indices;
    std::vector<float> values;  ///< empty for GAT (weights are learned)
  };

  /// The weighted adjacency the architecture's message passing reads.
  const Csr& message_graph() const;

  /// Expand `nodes` into per-layer block plans (exact full-fanout L-hop).
  void build_plan(std::span<const std::int64_t> nodes);

  /// Run the layer stack. When `plan` is true, executes over the current
  /// query plan's block CSRs; otherwise over the full graph, writing the
  /// final layer into logits_.
  void run_layers(bool use_plan);

  /// One GNN layer over an explicit CSR; h_in rows are sources, the
  /// written view covers destinations. Returns the output view. `layout`
  /// (full-graph passes only) routes the SpMM through the context's
  /// cached BlockedCsr instead of the raw spans.
  Tensor run_layer(std::int64_t layer, std::span<const std::int64_t> indptr,
                   std::span<const std::int32_t> indices,
                   std::span<const float> values, const Tensor& h_in,
                   std::int64_t num_dst, Tensor* final_out,
                   const graph::BlockedCsr* layout);

  /// Carve a [rows, cols] view out of workspace buffer `idx`.
  Tensor ws(int idx, std::int64_t rows, std::int64_t cols);

  GnnModel model_;
  ParamStore params_;
  std::shared_ptr<const GraphContext> ctx_;
  Tensor features_;
  QueryMode mode_;
  std::int64_t num_nodes_ = 0;
  std::int64_t max_width_ = 0;

  // Workspaces: three ping-pong layer buffers (input / scratch / output),
  // GAT score and attention-coefficient buffers, the cached full-graph
  // logits, and a one-row scratch for predict(). With an active GraphPlan
  // the full pass lands in plan_space_logits_ first and is unpermuted
  // into logits_ (always caller numbering) once per cache fill.
  Tensor buf_[3];
  Tensor score_dst_ws_;
  Tensor score_src_ws_;
  Tensor alpha_ws_;
  Tensor logits_;
  /// Plan-space staging for the full pass; allocated by the first
  /// full_logits() on an active-plan context (kSubgraph engines never
  /// pay for it), undefined otherwise.
  Tensor plan_space_logits_;
  Tensor single_out_;
  bool full_valid_ = false;

  // Query-plan state (reused across queries). plan_ids_ holds query node
  // ids translated to plan space (cleared, never shrunk).
  std::vector<std::int64_t> plan_ids_;
  std::vector<LayerPlan> plan_;
  std::vector<std::int64_t> seed_row_;   ///< query slot -> local dst row
  std::vector<std::int64_t> visit_epoch_;
  std::vector<std::int32_t> local_id_;
  std::int64_t epoch_ = 0;
  Tensor plan_out_;  ///< final-layer view of the last plan execution
};

}  // namespace gsoup::serve
