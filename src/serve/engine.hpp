// Autograd-free inference engine: the serving boundary around the exec
// layer's compiled forward.
//
// Training and evaluation run the model through the ag:: tape — every
// forward allocates a Value node, output tensor and closure per op, even
// under NoGradGuard. Serving cannot afford that. Since the exec refactor
// the engine no longer re-implements the forward either: it fetches the
// context's compiled exec::LayerPlan (the same plan the tape records
// through, so logits are bit-identical to training) and executes it with
// an exec::Executor in infer mode — plan-declared workspace slabs
// allocated once at construction, inference-only kernel lowering (the GAT
// alpha-skip forward: no [E, heads] attention-coefficient workspace at
// all), zero tracked heap allocation once warm (asserted by
// tests/test_serve.cpp and tests/test_exec.cpp via MemoryTracker).
//
// What remains in the engine is exactly the serving-boundary work:
//  - snapshot/feature validation and the GraphPlan translation boundary
//    (caller ids/features/logits stay in the caller's numbering; plan
//    space is an implementation detail of the context);
//  - the cached full-graph logits table (full_logits/invalidate);
//  - per-query L-hop expansion via exec::SubgraphPlanBuilder, plus
//    standalone compiled query plans (compile_query_plan) that the
//    BatchServer's LRU shares across workers for repeated hot batches.
//
// Two query paths:
//  - full_logits(): one forward over the whole graph, cached until
//    invalidate(). Row lookups are then free — the right mode for static
//    feature serving.
//  - query(nodes, out): exact L-hop subgraph inference — expansion is
//    exact for all three architectures (GAT's edge softmax sees every
//    in-edge of each destination), and far cheaper than a full pass when
//    the batch's neighbourhood is a fraction of the graph.
//
// An engine is deliberately single-threaded (the executor workspaces are
// reused mutable state); the batch server owns one engine per worker.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exec/executor.hpp"
#include "exec/subgraph.hpp"
#include "nn/graph_context.hpp"
#include "nn/model.hpp"
#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace gsoup::serve {

/// How query() answers: exact L-hop subgraph recomputation per batch, or
/// row lookups into the cached full-graph logits.
enum class QueryMode { kSubgraph, kCachedFull };

/// Which vertex numbering the constructor's `features` rows use.
/// kOriginal (the default) is the caller's numbering; on an active
/// GraphPlan context the engine then permutes a private copy. kPlan says
/// the rows are already plan-ordered — the BatchServer permutes once and
/// shares that copy across all of its workers' engines.
enum class FeatureSpace { kOriginal, kPlan };

class InferenceEngine {
 public:
  /// `ctx` must wrap the serving graph for `config.arch` and outlive the
  /// engine; `features` is the [num_nodes, in_dim] feature matrix (shared
  /// storage, not copied). `params` tensors are shared, not copied — the
  /// snapshot (or training run) that produced them must stay alive.
  ///
  /// Locality: when `ctx` carries an active GraphPlan (reordered vertex
  /// numbering), the engine is the translation boundary — `features`,
  /// query node ids and all returned logits stay in the caller's original
  /// numbering. The engine permutes a private feature copy once at
  /// construction, runs every forward in plan space over the context's
  /// cached layouts, and maps ids/rows at the edges.
  ///
  /// Precision: kFp16/kBf16 fetches the half-lowered LayerPlan instead —
  /// the engine quantizes a private half copy of the (possibly permuted)
  /// features, the executor stores weight panels and inter-layer
  /// activations at half width, and all query/logit interfaces stay fp32
  /// (accumulation is fp32 throughout; see docs/ARCHITECTURE.md
  /// "Precision lowering"). Alternatively `shared_half_features` hands in
  /// a pre-quantized matrix (matching `precision`, plan-space rows when
  /// the context reorders): the engine shares its storage instead of
  /// quantizing a copy — the BatchServer quantizes once per server and
  /// the sharded router once per shard, so W workers x R replicas hold
  /// ONE half-width feature slice. With a shared buffer `features` may be
  /// an undefined Tensor.
  InferenceEngine(const ModelConfig& config, const ParamStore& params,
                  std::shared_ptr<const GraphContext> ctx, Tensor features,
                  QueryMode mode = QueryMode::kSubgraph,
                  FeatureSpace feature_space = FeatureSpace::kOriginal,
                  Precision precision = Precision::kFp32,
                  std::shared_ptr<const HalfBuffer> shared_half_features =
                      nullptr);

  const ModelConfig& config() const { return plan_->config(); }
  QueryMode mode() const { return mode_; }
  Precision precision() const { return precision_; }
  std::int64_t num_nodes() const { return num_nodes_; }

  /// Class logits for every node, [num_nodes, out_dim]. Computed on first
  /// call and cached; invalidate() forces recomputation (e.g. after the
  /// shared feature storage was mutated in place).
  const Tensor& full_logits();
  void invalidate() { full_valid_ = false; }

  /// Half-precision kCachedFull engines only: the cached answer table at
  /// storage width (quantized from the fp32 full pass; row lookups widen
  /// on gather). Shares storage — the BatchServer keeps this buffer
  /// alive after the construction-time engine is gone, halving the
  /// steady-state table footprint.
  const HalfBuffer& full_logits_half();

  /// Logits for a batch of node ids, written to the corresponding rows of
  /// `out` ([nodes.size(), out_dim], caller-allocated). Duplicate ids are
  /// fine (they share the computation). Row order matches `nodes`.
  void query(std::span<const std::int64_t> nodes, Tensor& out);

  /// Build a standalone, immutable L-hop plan for `nodes` (caller
  /// numbering; ids are translated here). The plan is tied to this
  /// engine's graph/architecture but NOT to this engine: any worker
  /// engine over the same context can execute it — the BatchServer's
  /// plan LRU relies on that. Allocates (it is a cache fill, not the
  /// steady-state path).
  std::shared_ptr<const exec::SubgraphPlan> compile_query_plan(
      std::span<const std::int64_t> nodes);

  /// Execute a prebuilt plan from compile_query_plan. `out` rows follow
  /// the node order the plan was compiled from. kSubgraph engines only.
  void query(const exec::SubgraphPlan& plan, Tensor& out);

  /// Argmax class of one node (single-query convenience).
  std::int32_t predict(std::int64_t node);

  /// Install a row-completeness guard (sharded serving). `complete` is in
  /// the caller's numbering, size num_nodes(): 1 flags rows of this
  /// engine's graph that are faithful copies of the full graph's. The
  /// engine keeps a private copy (permuted into plan space when the
  /// context reorders vertices) and every subsequent subgraph expansion —
  /// query() and compile_query_plan() alike — throws CheckError if it
  /// walks an incomplete row, i.e. if a query's neighbourhood escapes the
  /// shard's replicated halo. An empty span clears the guard.
  void set_row_guard(std::span<const std::uint8_t> complete);

  /// Total bytes of preallocated workspace (capacity planning).
  std::size_t workspace_bytes() const;

 private:
  /// Map caller-numbering query ids into plan space when the context
  /// reorders vertices; returns the span to expand (plan_ids_ is reused,
  /// cleared but never shrunk).
  std::span<const std::int64_t> translate_ids(
      std::span<const std::int64_t> nodes);

  /// Scatter the executor's subgraph output rows into `out` by seed_row.
  void scatter_rows(const exec::SubgraphPlan& plan, const Tensor& rows,
                    Tensor& out) const;

  ParamStore params_;
  std::shared_ptr<const GraphContext> ctx_;
  Tensor features_;  ///< undefined in half mode (features_half_ serves)
  /// Half plans: the plan-space feature matrix at storage width — either
  /// a private quantized copy or storage shared with the server-owned
  /// slice every sibling engine reads.
  HalfBuffer features_half_;
  QueryMode mode_;
  Precision precision_ = Precision::kFp32;
  std::int64_t num_nodes_ = 0;

  /// The compiled forward (owned by ctx_, memoised there) and its
  /// infer-mode executor with plan-declared workspaces.
  const exec::LayerPlan* plan_ = nullptr;
  std::unique_ptr<exec::Executor> exec_;

  // The cached full-graph logits (always caller numbering) and a one-row
  // scratch for predict(). With an active GraphPlan the full pass lands
  // in plan_space_logits_ first and is unpermuted once per cache fill;
  // that staging buffer is allocated lazily by the first full_logits()
  // (kSubgraph engines never pay for it).
  Tensor logits_;
  Tensor plan_space_logits_;
  /// Half kCachedFull: the quantized answer table query() gathers from
  /// (convert-on-gather). Refilled alongside logits_ per cache fill.
  HalfBuffer logits_half_;
  Tensor single_out_;
  bool full_valid_ = false;

  // Row-completeness guard (plan space when the context reorders; empty
  // when unset). The builder holds a span into this vector — safe across
  // engine moves (the heap buffer travels with the vector).
  std::vector<std::uint8_t> row_guard_;

  // Steady-state query scratch (reused across queries, cleared but never
  // shrunk): translated ids, the expansion builder, and the plan object.
  std::vector<std::int64_t> plan_ids_;
  exec::SubgraphPlanBuilder builder_;
  exec::SubgraphPlan scratch_plan_;
};

}  // namespace gsoup::serve
