// Versioned model-snapshot container: everything needed to serve a souped
// model, in one file.
//
// The paper's payoff is that a soup is ONE model with the inference cost
// of a single ingredient; a snapshot is that model made portable. It
// bundles (a) the architecture config, (b) the souped parameter store, and
// (c) the graph-normalisation metadata the forward pass assumes (which
// adjacency normalisation, whether self loops are expected, the graph the
// soup was trained against), so a serving process can validate at load
// time that the graph it is about to answer queries over matches what the
// soup saw in training. Built on the hardened io::serialize primitives —
// corrupt or truncated snapshots throw CheckError, never deserialise
// garbage weights.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/dataset.hpp"
#include "nn/model.hpp"
#include "nn/param.hpp"

namespace gsoup::serve {

/// How the forward pass expects the adjacency to be normalised. Implied by
/// the architecture but recorded explicitly so a reader can detect a
/// mismatched (or future, differently-normalised) snapshot without
/// guessing.
struct GraphMeta {
  std::string normalization;  ///< "sym" (GCN), "row" (SAGE), "none" (GAT)
  bool self_loops = true;     ///< forward assumes self loops in the graph
  std::int64_t num_nodes = 0; ///< graph the soup was trained on
  std::int64_t num_edges = 0;
  std::string dataset;        ///< training dataset name (diagnostics)
};

struct Snapshot {
  ModelConfig config;
  GraphMeta graph;
  std::string method;  ///< souping method that produced `params`
  ParamStore params;

  /// The normalisation string implied by an architecture.
  static const char* arch_normalization(Arch arch);

  /// Cross-field validation: normalisation matches the architecture, and
  /// every parameter the architecture requires is present with the shape
  /// the config implies. Throws CheckError on violation — a snapshot that
  /// passes validate() is safe to hand to the inference engine.
  void validate() const;

  /// True if `graph` (node/edge counts) matches the serving graph.
  bool matches_graph(const Csr& csr) const;
};

/// Assemble a snapshot from a souped model. `soup` is deep-copied so the
/// snapshot owns its weights independently of the training run.
Snapshot make_snapshot(const ModelConfig& config, const ParamStore& soup,
                       const Dataset& data, const std::string& method);

void write_snapshot(std::ostream& os, const Snapshot& snap);
Snapshot read_snapshot(std::istream& is);

/// File-level helpers (throw CheckError on I/O failure or corruption).
void save_snapshot(const std::string& path, const Snapshot& snap);
Snapshot load_snapshot(const std::string& path);

}  // namespace gsoup::serve
