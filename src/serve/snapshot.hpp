// Versioned model-snapshot container: everything needed to serve a souped
// model, in one file.
//
// The paper's payoff is that a soup is ONE model with the inference cost
// of a single ingredient; a snapshot is that model made portable. It
// bundles (a) the architecture config, (b) the souped parameter store, and
// (c) the graph-normalisation metadata the forward pass assumes (which
// adjacency normalisation, whether self loops are expected, the graph the
// soup was trained against), so a serving process can validate at load
// time that the graph it is about to answer queries over matches what the
// soup saw in training. Built on the hardened io::serialize primitives —
// corrupt or truncated snapshots throw CheckError, never deserialise
// garbage weights.
//
// On-disk format (.gsnp): magic + version, then version-specific body.
//  - v3 (sharded, written by write_sharded_snapshot): the v2 meta and
//    params sections, then a shard-manifest section (shard count, halo
//    depth, partitioner provenance, global owner/local-id routing tables)
//    and one section per shard (owned count, node list, row-completeness
//    table, shard-local CSR), closed by a footer whose CRC covers every
//    section CRC. Same framing, same failure guarantees as v2; the
//    per-shard sections additionally honour the snapshot.shard_section
//    failpoint (fault-injection tests).
//  - v2 (written by write_snapshot): two CRC32-framed sections — config/
//    graph metadata, then the parameter store — each stored as
//    `section-magic, u64 length, u32 crc, payload`, closed by a footer
//    (`footer-magic, u32 crc-of-section-crcs`). A truncation anywhere
//    loses the footer, a bit flip anywhere breaks a CRC or a magic; both
//    raise CheckError (fuzz-tested in tests/test_serve.cpp).
//  - v1 (legacy, unframed): still readable; write_snapshot_v1 is kept so
//    the compatibility path stays pinned by tests.
// save_snapshot is crash-safe: it serialises to a temp file in the target
// directory, flushes and fsyncs it, then atomically renames it over the
// destination — a crash mid-save leaves either the old file or the new
// one, never a torn hybrid.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dataset.hpp"
#include "nn/model.hpp"
#include "nn/param.hpp"
#include "partition/sharding.hpp"
#include "tensor/half.hpp"

namespace gsoup::serve {

/// How the forward pass expects the adjacency to be normalised. Implied by
/// the architecture but recorded explicitly so a reader can detect a
/// mismatched (or future, differently-normalised) snapshot without
/// guessing.
struct GraphMeta {
  std::string normalization;  ///< "sym" (GCN), "row" (SAGE), "none" (GAT)
  bool self_loops = true;     ///< forward assumes self loops in the graph
  std::int64_t num_nodes = 0; ///< graph the soup was trained on
  std::int64_t num_edges = 0;
  std::string dataset;        ///< training dataset name (diagnostics)
};

struct Snapshot {
  ModelConfig config;
  GraphMeta graph;
  std::string method;  ///< souping method that produced `params`
  ParamStore params;

  /// The normalisation string implied by an architecture.
  static const char* arch_normalization(Arch arch);

  /// Cross-field validation: normalisation matches the architecture, and
  /// every parameter the architecture requires is present with the shape
  /// the config implies. Throws CheckError on violation — a snapshot that
  /// passes validate() is safe to hand to the inference engine.
  void validate() const;

  /// True if `graph` (node/edge counts) matches the serving graph.
  bool matches_graph(const Csr& csr) const;
};

/// Assemble a snapshot from a souped model. `soup` is deep-copied so the
/// snapshot owns its weights independently of the training run.
Snapshot make_snapshot(const ModelConfig& config, const ParamStore& soup,
                       const Dataset& data, const std::string& method);

/// Write the current (v2, CRC-framed) snapshot format.
void write_snapshot(std::ostream& os, const Snapshot& snap);

/// Write the legacy v1 (unframed) format. Kept only so tests can pin the
/// v1 compatibility path of read_snapshot; new code writes v2.
void write_snapshot_v1(std::ostream& os, const Snapshot& snap);

/// Write the v2 framed format with the parameter section stored QUANTIZED
/// (GSQ1 instead of GSP1): a `precision` tag, then per tensor its shape,
/// the max-abs of the quantized values (integrity metadata, re-checked at
/// load) and the 16-bit payload — roughly half the file. Same CRC32
/// framing, footer and atomic-rename machinery as write_snapshot; every
/// reader (read_snapshot/load_snapshot/read_sharded_snapshot) dispatches
/// on the section magic, so quantized and full-precision files load
/// through the same code path. Loading widens the parameters back to an
/// fp32 ParamStore; a half-precision serving stack then re-quantizes its
/// weight panels bit-identically (quantize∘widen is the identity on
/// representable values). `precision` must be kFp16 or kBf16.
void write_quantized_snapshot(std::ostream& os, const Snapshot& snap,
                              Precision precision);

/// Crash-safe file twin of write_quantized_snapshot (tmp file → fsync →
/// atomic rename, exactly like save_snapshot).
void save_quantized_snapshot(const std::string& path, const Snapshot& snap,
                             Precision precision);

/// Read either format (dispatches on the version field). Corrupt or
/// truncated input throws CheckError — never returns garbage weights.
Snapshot read_snapshot(std::istream& is);

/// File-level helpers (throw CheckError on I/O failure or corruption).
/// save_snapshot writes tmp-file → flush+fsync → atomic rename.
void save_snapshot(const std::string& path, const Snapshot& snap);
Snapshot load_snapshot(const std::string& path);

// ---- Sharded snapshots (v3) -----------------------------------------------

/// A snapshot plus the shard layout it should be served with. Loading an
/// unsharded (v1/v2) file yields `shards.num_shards == 0` — the caller
/// decides whether to serve single-engine or re-shard.
struct ShardedSnapshot {
  Snapshot snapshot;
  ShardSet shards;
  std::string partitioner;  ///< manifest provenance ("random"|"ldg"|...)

  bool sharded() const { return shards.num_shards > 0; }

  /// snapshot.validate() plus, when sharded, the graph-free structural
  /// half of the shard contract (validate_shard_set_structure) and the
  /// halo-depth check against the model's layer count. Throws CheckError.
  /// The row contract vs the global graph cannot be checked here — the
  /// snapshot does not carry the global CSR — which is exactly why every
  /// shard engine also runs under the exec row-completeness guard.
  void validate() const;
};

/// Write the v3 sharded format (meta + params + manifest + per-shard
/// sections + footer). `snap.validate()` must hold.
void write_sharded_snapshot(std::ostream& os, const ShardedSnapshot& snap);

/// Read any .gsnp version: v3 yields the full sharded layout, v1/v2 yield
/// the snapshot with zero shards. Corrupt or truncated input throws
/// CheckError — a bad manifest or shard section never mis-loads.
ShardedSnapshot read_sharded_snapshot(std::istream& is);

/// File-level sharded helpers; save is tmp-file → fsync → atomic rename,
/// exactly like save_snapshot.
void save_sharded_snapshot(const std::string& path,
                           const ShardedSnapshot& snap);
ShardedSnapshot load_sharded_snapshot(const std::string& path);

/// One shard's manifest line: the structural numbers a replicated serving
/// process sizes itself by. `section_bytes` is the EXACT on-disk cost of
/// the shard's v3 section (body + 16-byte magic/length/CRC framing) —
/// with replication_factor R, each replica re-reads none of it (replicas
/// share the shard's storage) but duplicates the engine workspace the
/// section implies, so the report is the honest input to capacity math.
struct ShardSectionReport {
  std::int64_t shard = 0;
  std::int64_t owned = 0;
  std::int64_t halo = 0;
  std::int64_t edges = 0;
  std::uint64_t section_bytes = 0;
};

/// Per-shard section reports for a sharded snapshot (empty if unsharded).
/// Computed by re-serialising each shard body — the same code path the
/// writer uses, so the byte counts cannot drift from the format.
std::vector<ShardSectionReport> manifest_report(const ShardedSnapshot& snap);

}  // namespace gsoup::serve
