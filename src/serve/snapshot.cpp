#include "serve/snapshot.hpp"

#include <fstream>
#include <string_view>

#include "exec/layer_plan.hpp"
#include "io/serialize.hpp"
#include "util/check.hpp"

namespace gsoup::serve {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x47534E50;  // "GSNP"
constexpr std::uint32_t kSnapshotVersion = 1;

const char* const* param_suffixes(Arch arch, std::size_t& count) {
  // Names each architecture stores per layer, in ParamStore order.
  static const char* const kGcn[] = {"weight", "bias"};
  static const char* const kSage[] = {"weight_self", "weight_neigh", "bias"};
  static const char* const kGat[] = {"weight", "attn_dst", "attn_src",
                                     "bias"};
  switch (arch) {
    case Arch::kGcn: count = 2; return kGcn;
    case Arch::kSage: count = 3; return kSage;
    case Arch::kGat: count = 4; return kGat;
  }
  count = 0;
  return nullptr;
}

}  // namespace

const char* Snapshot::arch_normalization(Arch arch) {
  switch (arch) {
    case Arch::kGcn: return "sym";
    case Arch::kSage: return "row";
    case Arch::kGat: return "none";
  }
  return "none";
}

void Snapshot::validate() const {
  GSOUP_CHECK_MSG(graph.normalization == arch_normalization(config.arch),
                  "snapshot normalization '"
                      << graph.normalization << "' does not match arch "
                      << arch_name(config.arch));
  GSOUP_CHECK_MSG(graph.num_nodes >= 0 && graph.num_edges >= 0,
                  "snapshot graph metadata is negative");

  // Rebuild the expected parameter inventory from the config and compare
  // name-by-name, shape-by-shape.
  const GnnModel model(config);  // validates the config itself
  std::size_t per_layer = 0;
  const char* const* suffixes = param_suffixes(config.arch, per_layer);
  GSOUP_CHECK_MSG(params.size() ==
                      per_layer * static_cast<std::size_t>(config.num_layers),
                  "snapshot has " << params.size() << " parameters, config "
                                  << config.describe() << " implies "
                                  << per_layer * static_cast<std::size_t>(
                                                     config.num_layers));
  for (std::int64_t l = 0; l < config.num_layers; ++l) {
    const std::int64_t in = model.layer_in_dim(l);
    const std::int64_t width = model.layer_out_width(l);
    for (std::size_t s = 0; s < per_layer; ++s) {
      const std::string name = exec::layer_param_name(l, suffixes[s]);
      GSOUP_CHECK_MSG(params.contains(name),
                      "snapshot is missing parameter " << name);
      GSOUP_CHECK_MSG(params.layer_of(name) == static_cast<std::int32_t>(l),
                      "snapshot parameter " << name << " tagged with layer "
                                            << params.layer_of(name));
      const Tensor& t = params.get(name);
      const std::string_view suffix = suffixes[s];
      if (suffix == "bias" || suffix == "attn_dst" || suffix == "attn_src") {
        GSOUP_CHECK_MSG(t.rank() == 1 && t.shape(0) == width,
                        "snapshot parameter " << name << " has shape "
                                              << t.shape_str() << ", expected ["
                                              << width << "]");
      } else {
        GSOUP_CHECK_MSG(t.rank() == 2 && t.shape(0) == in &&
                            t.shape(1) == width,
                        "snapshot parameter "
                            << name << " has shape " << t.shape_str()
                            << ", expected [" << in << ", " << width << "]");
      }
    }
  }
}

bool Snapshot::matches_graph(const Csr& csr) const {
  return graph.num_nodes == csr.num_nodes &&
         graph.num_edges == csr.num_edges();
}

Snapshot make_snapshot(const ModelConfig& config, const ParamStore& soup,
                       const Dataset& data, const std::string& method) {
  Snapshot snap;
  snap.config = config;
  snap.graph.normalization = Snapshot::arch_normalization(config.arch);
  snap.graph.self_loops = true;
  snap.graph.num_nodes = data.num_nodes();
  snap.graph.num_edges = data.num_edges();
  snap.graph.dataset = data.name;
  snap.method = method;
  snap.params = soup.clone();
  snap.validate();
  return snap;
}

void write_snapshot(std::ostream& os, const Snapshot& snap) {
  using namespace io::detail;
  write_header(os, kSnapshotMagic, kSnapshotVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(snap.config.arch));
  write_pod<std::int64_t>(os, snap.config.in_dim);
  write_pod<std::int64_t>(os, snap.config.hidden_dim);
  write_pod<std::int64_t>(os, snap.config.out_dim);
  write_pod<std::int64_t>(os, snap.config.num_layers);
  write_pod<std::int64_t>(os, snap.config.heads);
  write_pod<float>(os, snap.config.dropout);
  write_pod<float>(os, snap.config.attn_slope);
  write_string(os, snap.graph.normalization);
  write_pod<std::uint8_t>(os, snap.graph.self_loops ? 1 : 0);
  write_pod<std::int64_t>(os, snap.graph.num_nodes);
  write_pod<std::int64_t>(os, snap.graph.num_edges);
  write_string(os, snap.graph.dataset);
  write_string(os, snap.method);
  io::write_params(os, snap.params);
}

Snapshot read_snapshot(std::istream& is) {
  using namespace io::detail;
  expect_header(is, kSnapshotMagic, kSnapshotVersion, "snapshot");
  Snapshot snap;
  const auto arch = read_pod<std::uint32_t>(is);
  GSOUP_CHECK_MSG(arch <= static_cast<std::uint32_t>(Arch::kGat),
                  "snapshot has unknown architecture id " << arch);
  snap.config.arch = static_cast<Arch>(arch);
  snap.config.in_dim = read_pod<std::int64_t>(is);
  snap.config.hidden_dim = read_pod<std::int64_t>(is);
  snap.config.out_dim = read_pod<std::int64_t>(is);
  snap.config.num_layers = read_pod<std::int64_t>(is);
  snap.config.heads = read_pod<std::int64_t>(is);
  snap.config.dropout = read_pod<float>(is);
  snap.config.attn_slope = read_pod<float>(is);
  snap.graph.normalization = read_string(is);
  snap.graph.self_loops = read_pod<std::uint8_t>(is) != 0;
  snap.graph.num_nodes = read_pod<std::int64_t>(is);
  snap.graph.num_edges = read_pod<std::int64_t>(is);
  snap.graph.dataset = read_string(is);
  snap.method = read_string(is);
  snap.params = io::read_params(is);
  snap.validate();
  return snap;
}

void save_snapshot(const std::string& path, const Snapshot& snap) {
  std::ofstream os(path, std::ios::binary);
  GSOUP_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_snapshot(os, snap);
  GSOUP_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GSOUP_CHECK_MSG(is.good(), "cannot open " << path);
  return read_snapshot(is);
}

}  // namespace gsoup::serve
