#include "serve/snapshot.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "exec/layer_plan.hpp"
#include "io/serialize.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace gsoup::serve {

namespace {

using namespace io::detail;

constexpr std::uint32_t kSnapshotMagic = 0x47534E50;  // "GSNP"
constexpr std::uint32_t kSnapshotVersionV1 = 1;
constexpr std::uint32_t kSnapshotVersion = 2;
constexpr std::uint32_t kSnapshotVersionV3 = 3;  // sharded layout

// v2 framing: each section is `magic, u64 length, u32 crc, payload`; the
// file ends with `footer magic, u32 crc` over the per-section CRCs, so a
// complete-looking prefix of a torn file still fails the read. v3 reuses
// the framing with two more section kinds (manifest + one per shard) and
// a footer CRC over however many sections the file carries.
constexpr std::uint32_t kMetaSectionMagic = 0x47534D31;     // "GSM1"
constexpr std::uint32_t kParamsSectionMagic = 0x47535031;   // "GSP1"
constexpr std::uint32_t kQuantSectionMagic = 0x47535131;    // "GSQ1"
constexpr std::uint32_t kShardManifestMagic = 0x47534831;   // "GSH1"
constexpr std::uint32_t kShardSectionMagic = 0x47535331;    // "GSS1"
constexpr std::uint32_t kFooterMagic = 0x47534654;          // "GSFT"

/// Routing-table sanity bound: a manifest claiming more shards than this
/// is rejected before the reader loops over shard sections.
constexpr std::int64_t kMaxShards = 1 << 20;

/// Largest plausible section payload. A corrupted length field beyond
/// this is rejected before any allocation happens.
constexpr std::uint64_t kMaxSectionBytes = 1ULL << 40;

const char* const* param_suffixes(Arch arch, std::size_t& count) {
  // Names each architecture stores per layer, in ParamStore order.
  static const char* const kGcn[] = {"weight", "bias"};
  static const char* const kSage[] = {"weight_self", "weight_neigh", "bias"};
  static const char* const kGat[] = {"weight", "attn_dst", "attn_src",
                                     "bias"};
  switch (arch) {
    case Arch::kGcn: count = 2; return kGcn;
    case Arch::kSage: count = 3; return kSage;
    case Arch::kGat: count = 4; return kGat;
  }
  count = 0;
  return nullptr;
}

/// Config + graph metadata + method: the non-parameter body, identical in
/// v1 (inline) and v2 (inside the CRC-framed meta section).
void write_meta_body(std::ostream& os, const Snapshot& snap) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(snap.config.arch));
  write_pod<std::int64_t>(os, snap.config.in_dim);
  write_pod<std::int64_t>(os, snap.config.hidden_dim);
  write_pod<std::int64_t>(os, snap.config.out_dim);
  write_pod<std::int64_t>(os, snap.config.num_layers);
  write_pod<std::int64_t>(os, snap.config.heads);
  write_pod<float>(os, snap.config.dropout);
  write_pod<float>(os, snap.config.attn_slope);
  write_string(os, snap.graph.normalization);
  write_pod<std::uint8_t>(os, snap.graph.self_loops ? 1 : 0);
  write_pod<std::int64_t>(os, snap.graph.num_nodes);
  write_pod<std::int64_t>(os, snap.graph.num_edges);
  write_string(os, snap.graph.dataset);
  write_string(os, snap.method);
}

void read_meta_body(std::istream& is, Snapshot& snap) {
  const auto arch = read_pod<std::uint32_t>(is);
  GSOUP_CHECK_MSG(arch <= static_cast<std::uint32_t>(Arch::kGat),
                  "snapshot has unknown architecture id " << arch);
  snap.config.arch = static_cast<Arch>(arch);
  snap.config.in_dim = read_pod<std::int64_t>(is);
  snap.config.hidden_dim = read_pod<std::int64_t>(is);
  snap.config.out_dim = read_pod<std::int64_t>(is);
  snap.config.num_layers = read_pod<std::int64_t>(is);
  snap.config.heads = read_pod<std::int64_t>(is);
  snap.config.dropout = read_pod<float>(is);
  snap.config.attn_slope = read_pod<float>(is);
  snap.graph.normalization = read_string(is);
  snap.graph.self_loops = read_pod<std::uint8_t>(is) != 0;
  snap.graph.num_nodes = read_pod<std::int64_t>(is);
  snap.graph.num_edges = read_pod<std::int64_t>(is);
  snap.graph.dataset = read_string(is);
  snap.method = read_string(is);
}

/// Frame `payload` as a v2 section and return its CRC (for the footer).
std::uint32_t write_section(std::ostream& os, std::uint32_t magic,
                            const std::string& payload) {
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  write_pod<std::uint32_t>(os, magic);
  write_pod<std::uint64_t>(os, payload.size());
  write_pod<std::uint32_t>(os, crc);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return crc;
}

/// Read and verify one v2 section AFTER its magic has been consumed;
/// returns (payload, crc). The payload is read in bounded chunks so a
/// corrupted length field stops at the first short read instead of
/// allocating terabytes.
std::pair<std::string, std::uint32_t> read_section_body(std::istream& is,
                                                        const char* what) {
  const auto len = read_pod<std::uint64_t>(is);
  GSOUP_CHECK_MSG(len < kMaxSectionBytes,
                  "implausible snapshot " << what << " section length "
                                          << len);
  const auto stored_crc = read_pod<std::uint32_t>(is);
  std::string payload;
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t take = std::min<std::uint64_t>(len - done,
                                                       kReadChunkBytes);
    payload.resize(static_cast<std::size_t>(done + take));
    read_exact(is, payload.data() + done, static_cast<std::size_t>(take));
    done += take;
  }
  GSOUP_CHECK_MSG(crc32(payload.data(), payload.size()) == stored_crc,
                  "snapshot " << what << " section failed its CRC check");
  return {std::move(payload), stored_crc};
}

std::pair<std::string, std::uint32_t> read_section(std::istream& is,
                                                   std::uint32_t magic,
                                                   const char* what) {
  GSOUP_CHECK_MSG(read_pod<std::uint32_t>(is) == magic,
                  "bad snapshot " << what << " section magic");
  return read_section_body(is, what);
}

// ---- Quantized parameter section (GSQ1) -----------------------------------

/// Max-abs over the WIDENED quantized values — writer and reader compute
/// it with the same loop, so the metadata check is exact (bit-compared)
/// and never fails a legitimate round-trip. NaN payloads (hand-crafted
/// files; real parameters are finite) compare false and are ignored by
/// both sides identically.
float quantized_max_abs(const std::uint16_t* q, std::int64_t n,
                        Precision precision) {
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = std::fabs(half::widen_one(q[i], precision));
    if (v > max_abs) max_abs = v;
  }
  return max_abs;
}

void write_quantized_params_body(std::ostream& os, const ParamStore& params,
                                 Precision precision) {
  GSOUP_CHECK_MSG(precision != Precision::kFp32,
                  "quantized snapshots need kFp16 or kBf16");
  write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(precision));
  write_pod<std::uint64_t>(os, params.size());
  std::vector<std::uint16_t> q;
  for (const auto& e : params.entries()) {
    write_string(os, e.name);
    write_pod<std::int32_t>(os, e.layer);
    const Tensor& t = e.tensor;
    write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d) {
      write_pod<std::int64_t>(os, t.shape(d));
    }
    q.resize(static_cast<std::size_t>(t.numel()));
    half::quantize(t.data(), q.data(), t.numel(), precision);
    write_pod<float>(os, quantized_max_abs(q.data(), t.numel(), precision));
    write_vector(os, q);
  }
}

ParamStore read_quantized_params_body(std::istream& is) {
  const auto prec_id = read_pod<std::uint8_t>(is);
  GSOUP_CHECK_MSG(prec_id == static_cast<std::uint8_t>(Precision::kFp16) ||
                      prec_id == static_cast<std::uint8_t>(Precision::kBf16),
                  "quantized section has unknown precision id "
                      << static_cast<int>(prec_id));
  const auto precision = static_cast<Precision>(prec_id);
  const auto count = read_pod<std::uint64_t>(is);
  GSOUP_CHECK_MSG(count < (1ULL << 20), "implausible parameter count");
  ParamStore store;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(is);
    const auto layer = read_pod<std::int32_t>(is);
    const auto rank = read_pod<std::uint8_t>(is);
    GSOUP_CHECK_MSG(rank >= 1 && rank <= 4,
                    "quantized parameter " << name << " has implausible rank "
                                           << static_cast<int>(rank));
    Shape shape;
    std::int64_t numel = 1;
    for (int d = 0; d < rank; ++d) {
      const auto dim = read_pod<std::int64_t>(is);
      GSOUP_CHECK_MSG(dim >= 0 && dim < (1LL << 32),
                      "quantized parameter " << name
                                             << " has implausible dimension "
                                             << dim);
      shape.push_back(dim);
      numel *= dim;
      GSOUP_CHECK_MSG(numel < (1LL << 33),
                      "quantized parameter " << name << " is implausibly "
                                                        "large");
    }
    const auto stored_max_abs = read_pod<float>(is);
    const std::vector<std::uint16_t> q = read_vector<std::uint16_t>(is);
    GSOUP_CHECK_MSG(static_cast<std::int64_t>(q.size()) == numel,
                    "quantized parameter "
                        << name << " payload has " << q.size()
                        << " values, shape implies " << numel);
    // Integrity metadata: the stored max-abs must bit-match the payload's
    // (CRC covers random corruption; this catches consistent hand-edits
    // and format drift).
    const float max_abs = quantized_max_abs(q.data(), numel, precision);
    GSOUP_CHECK_MSG(std::bit_cast<std::uint32_t>(max_abs) ==
                        std::bit_cast<std::uint32_t>(stored_max_abs),
                    "quantized parameter "
                        << name << " max-abs metadata (" << stored_max_abs
                        << ") does not match its payload (" << max_abs
                        << ")");
    Tensor t = Tensor::empty(std::move(shape));
    half::widen(q.data(), t.data(), numel, precision);
    store.add(std::move(name), std::move(t), layer);
  }
  return store;
}

/// The params section of a v2/v3 body: full-precision (GSP1) or quantized
/// (GSQ1) — the reader peeks the magic and dispatches, so both kinds of
/// file load through every .gsnp entry point. Returns the section CRC.
std::uint32_t read_params_section(std::istream& is, ParamStore& params) {
  const auto magic = read_pod<std::uint32_t>(is);
  GSOUP_CHECK_MSG(
      magic == kParamsSectionMagic || magic == kQuantSectionMagic,
      "bad snapshot params section magic");
  const bool quantized = magic == kQuantSectionMagic;
  auto [bytes, crc] =
      read_section_body(is, quantized ? "quantized params" : "params");
  std::istringstream body(bytes);
  params = quantized ? read_quantized_params_body(body)
                     : io::read_params(body);
  return crc;
}

Snapshot read_snapshot_v1(std::istream& is) {
  Snapshot snap;
  read_meta_body(is, snap);
  snap.params = io::read_params(is);
  return snap;
}

Snapshot read_snapshot_v2(std::istream& is) {
  Snapshot snap;
  const auto [meta_bytes, meta_crc] = read_section(is, kMetaSectionMagic,
                                                   "meta");
  {
    std::istringstream meta(meta_bytes);
    read_meta_body(meta, snap);
  }
  const std::uint32_t param_crc = read_params_section(is, snap.params);
  GSOUP_CHECK_MSG(read_pod<std::uint32_t>(is) == kFooterMagic,
                  "snapshot footer missing (truncated file?)");
  const std::uint32_t crcs[2] = {meta_crc, param_crc};
  GSOUP_CHECK_MSG(read_pod<std::uint32_t>(is) == crc32(crcs, sizeof(crcs)),
                  "snapshot footer failed its CRC check");
  return snap;
}

// ---- v3 sharded bodies ----------------------------------------------------

/// Shard manifest: routing and provenance. `local_id` is NOT stored — it
/// is derived data (the rank of each node inside its owner's owned list)
/// and is rebuilt at load, so the two tables can never disagree on disk.
void write_manifest_body(std::ostream& os, const ShardedSnapshot& snap) {
  write_pod<std::int64_t>(os, snap.shards.num_shards);
  write_pod<std::int64_t>(os, snap.shards.halo_hops);
  write_string(os, snap.partitioner);
  write_vector(os, snap.shards.owner);
}

void read_manifest_body(std::istream& is, ShardedSnapshot& snap) {
  snap.shards.num_shards = read_pod<std::int64_t>(is);
  GSOUP_CHECK_MSG(snap.shards.num_shards >= 1 &&
                      snap.shards.num_shards <= kMaxShards,
                  "snapshot manifest claims " << snap.shards.num_shards
                                              << " shards");
  snap.shards.halo_hops = read_pod<std::int64_t>(is);
  snap.partitioner = read_string(is);
  snap.shards.owner = read_vector<std::int32_t>(is);
}

void write_shard_body(std::ostream& os, const ShardGraph& shard) {
  write_pod<std::int64_t>(os, shard.index);
  write_pod<std::int64_t>(os, shard.num_owned);
  write_vector(os, shard.nodes);
  write_vector(os, shard.row_complete);
  write_pod<std::int64_t>(os, shard.graph.num_nodes);
  write_vector(os, shard.graph.indptr);
  write_vector(os, shard.graph.indices);
  write_vector(os, shard.graph.values);
}

void read_shard_body(std::istream& is, ShardGraph& shard) {
  shard.index = read_pod<std::int64_t>(is);
  shard.num_owned = read_pod<std::int64_t>(is);
  shard.nodes = read_vector<std::int64_t>(is);
  shard.row_complete = read_vector<std::uint8_t>(is);
  shard.graph.num_nodes = read_pod<std::int64_t>(is);
  shard.graph.indptr = read_vector<std::int64_t>(is);
  shard.graph.indices = read_vector<std::int32_t>(is);
  shard.graph.values = read_vector<float>(is);
}

ShardedSnapshot read_snapshot_v3(std::istream& is) {
  ShardedSnapshot out;
  std::vector<std::uint32_t> crcs;
  {
    const auto [bytes, crc] = read_section(is, kMetaSectionMagic, "meta");
    crcs.push_back(crc);
    std::istringstream body(bytes);
    read_meta_body(body, out.snapshot);
  }
  crcs.push_back(read_params_section(is, out.snapshot.params));
  {
    const auto [bytes, crc] = read_section(is, kShardManifestMagic,
                                           "shard manifest");
    crcs.push_back(crc);
    std::istringstream body(bytes);
    read_manifest_body(body, out);
  }
  out.shards.shards.resize(
      static_cast<std::size_t>(out.shards.num_shards));
  for (std::int64_t s = 0; s < out.shards.num_shards; ++s) {
    FAILPOINT("snapshot.shard_section");
    const auto [bytes, crc] = read_section(is, kShardSectionMagic, "shard");
    crcs.push_back(crc);
    std::istringstream body(bytes);
    ShardGraph& shard = out.shards.shards[static_cast<std::size_t>(s)];
    read_shard_body(body, shard);
    GSOUP_CHECK_MSG(shard.index == s,
                    "shard section " << s << " carries index "
                                     << shard.index);
  }
  GSOUP_CHECK_MSG(read_pod<std::uint32_t>(is) == kFooterMagic,
                  "snapshot footer missing (truncated file?)");
  GSOUP_CHECK_MSG(
      read_pod<std::uint32_t>(is) ==
          crc32(crcs.data(), crcs.size() * sizeof(std::uint32_t)),
      "snapshot footer failed its CRC check");

  // Rebuild the derived local-id routing table from the owned prefixes.
  // Bounds-checked here because a well-CRC'd but hand-crafted file could
  // still carry out-of-range ids; full structural validation follows in
  // ShardedSnapshot::validate().
  const std::int64_t n =
      static_cast<std::int64_t>(out.shards.owner.size());
  out.shards.local_id.assign(static_cast<std::size_t>(n), -1);
  for (const ShardGraph& shard : out.shards.shards) {
    GSOUP_CHECK_MSG(shard.num_owned >= 0 &&
                        shard.num_owned <= shard.num_local(),
                    "shard " << shard.index << " owned count out of range");
    for (std::int64_t i = 0; i < shard.num_owned; ++i) {
      const std::int64_t g = shard.nodes[static_cast<std::size_t>(i)];
      GSOUP_CHECK_MSG(g >= 0 && g < n, "shard " << shard.index
                                                << " owns out-of-range node "
                                                << g);
      out.shards.local_id[static_cast<std::size_t>(g)] =
          static_cast<std::int32_t>(i);
    }
  }
  return out;
}

/// Shared version-dispatch core: every `.gsnp` read goes through here, so
/// the v1/v2/v3 paths can never drift on magic, validation, or failpoint
/// behaviour. Unsharded files come back with zero shards.
ShardedSnapshot read_any_snapshot(std::istream& is) {
  FAILPOINT("snapshot.read");
  GSOUP_CHECK_MSG(read_pod<std::uint32_t>(is) == kSnapshotMagic,
                  "bad snapshot magic");
  const auto version = read_pod<std::uint32_t>(is);
  ShardedSnapshot snap;
  if (version == kSnapshotVersionV1) {
    snap.snapshot = read_snapshot_v1(is);
  } else if (version == kSnapshotVersion) {
    snap.snapshot = read_snapshot_v2(is);
  } else if (version == kSnapshotVersionV3) {
    snap = read_snapshot_v3(is);
  } else {
    GSOUP_CHECK_MSG(false, "unsupported snapshot version " << version);
  }
  snap.validate();
  return snap;
}

/// Crash-safe publish shared by save_snapshot and save_sharded_snapshot:
/// temp file in the target directory (rename() must not cross
/// filesystems, and the name is salted with the pid so concurrent savers
/// never share it), fwrite + fflush + fsync, then atomic rename.
void atomic_write_file(const std::string& path, const std::string& bytes) {
  std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
  tmp += "." + std::to_string(::getpid());
#endif
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  GSOUP_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing");
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // Data must be durable BEFORE the rename publishes it: a crash after
  // rename but before writeback would otherwise leave a torn "new" file.
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    GSOUP_CHECK_MSG(false, "write to " << tmp << " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    GSOUP_CHECK_MSG(false, "cannot rename " << tmp << " over " << path);
  }
}

}  // namespace

const char* Snapshot::arch_normalization(Arch arch) {
  switch (arch) {
    case Arch::kGcn: return "sym";
    case Arch::kSage: return "row";
    case Arch::kGat: return "none";
  }
  return "none";
}

void Snapshot::validate() const {
  GSOUP_CHECK_MSG(graph.normalization == arch_normalization(config.arch),
                  "snapshot normalization '"
                      << graph.normalization << "' does not match arch "
                      << arch_name(config.arch));
  GSOUP_CHECK_MSG(graph.num_nodes >= 0 && graph.num_edges >= 0,
                  "snapshot graph metadata is negative");

  // Rebuild the expected parameter inventory from the config and compare
  // name-by-name, shape-by-shape.
  const GnnModel model(config);  // validates the config itself
  std::size_t per_layer = 0;
  const char* const* suffixes = param_suffixes(config.arch, per_layer);
  GSOUP_CHECK_MSG(params.size() ==
                      per_layer * static_cast<std::size_t>(config.num_layers),
                  "snapshot has " << params.size() << " parameters, config "
                                  << config.describe() << " implies "
                                  << per_layer * static_cast<std::size_t>(
                                                     config.num_layers));
  for (std::int64_t l = 0; l < config.num_layers; ++l) {
    const std::int64_t in = model.layer_in_dim(l);
    const std::int64_t width = model.layer_out_width(l);
    for (std::size_t s = 0; s < per_layer; ++s) {
      const std::string name = exec::layer_param_name(l, suffixes[s]);
      GSOUP_CHECK_MSG(params.contains(name),
                      "snapshot is missing parameter " << name);
      GSOUP_CHECK_MSG(params.layer_of(name) == static_cast<std::int32_t>(l),
                      "snapshot parameter " << name << " tagged with layer "
                                            << params.layer_of(name));
      const Tensor& t = params.get(name);
      const std::string_view suffix = suffixes[s];
      if (suffix == "bias" || suffix == "attn_dst" || suffix == "attn_src") {
        GSOUP_CHECK_MSG(t.rank() == 1 && t.shape(0) == width,
                        "snapshot parameter " << name << " has shape "
                                              << t.shape_str() << ", expected ["
                                              << width << "]");
      } else {
        GSOUP_CHECK_MSG(t.rank() == 2 && t.shape(0) == in &&
                            t.shape(1) == width,
                        "snapshot parameter "
                            << name << " has shape " << t.shape_str()
                            << ", expected [" << in << ", " << width << "]");
      }
    }
  }
}

bool Snapshot::matches_graph(const Csr& csr) const {
  return graph.num_nodes == csr.num_nodes &&
         graph.num_edges == csr.num_edges();
}

Snapshot make_snapshot(const ModelConfig& config, const ParamStore& soup,
                       const Dataset& data, const std::string& method) {
  Snapshot snap;
  snap.config = config;
  snap.graph.normalization = Snapshot::arch_normalization(config.arch);
  snap.graph.self_loops = true;
  snap.graph.num_nodes = data.num_nodes();
  snap.graph.num_edges = data.num_edges();
  snap.graph.dataset = data.name;
  snap.method = method;
  snap.params = soup.clone();
  snap.validate();
  return snap;
}

void write_snapshot(std::ostream& os, const Snapshot& snap) {
  FAILPOINT("snapshot.write");
  write_header(os, kSnapshotMagic, kSnapshotVersion);
  std::ostringstream meta(std::ios::binary);
  write_meta_body(meta, snap);
  std::ostringstream params(std::ios::binary);
  io::write_params(params, snap.params);
  const std::uint32_t crcs[2] = {
      write_section(os, kMetaSectionMagic, meta.str()),
      write_section(os, kParamsSectionMagic, params.str()),
  };
  write_pod<std::uint32_t>(os, kFooterMagic);
  write_pod<std::uint32_t>(os, crc32(crcs, sizeof(crcs)));
}

void write_snapshot_v1(std::ostream& os, const Snapshot& snap) {
  write_header(os, kSnapshotMagic, kSnapshotVersionV1);
  write_meta_body(os, snap);
  io::write_params(os, snap.params);
}

void write_quantized_snapshot(std::ostream& os, const Snapshot& snap,
                              Precision precision) {
  FAILPOINT("snapshot.write");
  GSOUP_CHECK_MSG(precision != Precision::kFp32,
                  "quantized snapshots need kFp16 or kBf16; use "
                  "write_snapshot for full precision");
  write_header(os, kSnapshotMagic, kSnapshotVersion);
  std::ostringstream meta(std::ios::binary);
  write_meta_body(meta, snap);
  std::ostringstream params(std::ios::binary);
  write_quantized_params_body(params, snap.params, precision);
  const std::uint32_t crcs[2] = {
      write_section(os, kMetaSectionMagic, meta.str()),
      write_section(os, kQuantSectionMagic, params.str()),
  };
  write_pod<std::uint32_t>(os, kFooterMagic);
  write_pod<std::uint32_t>(os, crc32(crcs, sizeof(crcs)));
}

void save_quantized_snapshot(const std::string& path, const Snapshot& snap,
                             Precision precision) {
  OBS_SPAN("snapshot.save");
  std::ostringstream buf(std::ios::binary);
  write_quantized_snapshot(buf, snap, precision);
  atomic_write_file(path, buf.str());
}

Snapshot read_snapshot(std::istream& is) {
  return read_any_snapshot(is).snapshot;
}

void save_snapshot(const std::string& path, const Snapshot& snap) {
  OBS_SPAN("snapshot.save");
  // Serialise fully in memory first: if write_snapshot throws (validation,
  // failpoint), no file — not even a temp — is touched.
  std::ostringstream buf(std::ios::binary);
  write_snapshot(buf, snap);
  atomic_write_file(path, buf.str());
}

Snapshot load_snapshot(const std::string& path) {
  OBS_SPAN("snapshot.load");
  std::ifstream is(path, std::ios::binary);
  GSOUP_CHECK_MSG(is.good(), "cannot open " << path);
  return read_snapshot(is);
}

// ---- Sharded snapshots (v3) -----------------------------------------------

void ShardedSnapshot::validate() const {
  snapshot.validate();
  if (!sharded()) return;
  GSOUP_CHECK_MSG(shards.num_nodes() == snapshot.graph.num_nodes,
                  "shard manifest covers " << shards.num_nodes()
                                           << " nodes; the snapshot graph has "
                                           << snapshot.graph.num_nodes);
  GSOUP_CHECK_MSG(shards.halo_hops >= snapshot.config.num_layers,
                  "shard halo depth " << shards.halo_hops
                                      << " cannot serve the snapshot's "
                                      << snapshot.config.num_layers
                                      << "-layer model shard-locally");
  validate_shard_set_structure(shards, snapshot.graph.num_nodes);
}

void write_sharded_snapshot(std::ostream& os, const ShardedSnapshot& snap) {
  FAILPOINT("snapshot.write");
  GSOUP_CHECK_MSG(snap.sharded(),
                  "write_sharded_snapshot needs a sharded snapshot; use "
                  "write_snapshot for unsharded models");
  snap.validate();
  write_header(os, kSnapshotMagic, kSnapshotVersionV3);
  std::vector<std::uint32_t> crcs;
  {
    std::ostringstream body(std::ios::binary);
    write_meta_body(body, snap.snapshot);
    crcs.push_back(write_section(os, kMetaSectionMagic, body.str()));
  }
  {
    std::ostringstream body(std::ios::binary);
    io::write_params(body, snap.snapshot.params);
    crcs.push_back(write_section(os, kParamsSectionMagic, body.str()));
  }
  {
    std::ostringstream body(std::ios::binary);
    write_manifest_body(body, snap);
    crcs.push_back(write_section(os, kShardManifestMagic, body.str()));
  }
  for (const ShardGraph& shard : snap.shards.shards) {
    FAILPOINT("snapshot.shard_section");
    std::ostringstream body(std::ios::binary);
    write_shard_body(body, shard);
    crcs.push_back(write_section(os, kShardSectionMagic, body.str()));
  }
  write_pod<std::uint32_t>(os, kFooterMagic);
  write_pod<std::uint32_t>(
      os, crc32(crcs.data(), crcs.size() * sizeof(std::uint32_t)));
}

ShardedSnapshot read_sharded_snapshot(std::istream& is) {
  return read_any_snapshot(is);
}

void save_sharded_snapshot(const std::string& path,
                           const ShardedSnapshot& snap) {
  OBS_SPAN("snapshot.save");
  std::ostringstream buf(std::ios::binary);
  write_sharded_snapshot(buf, snap);
  atomic_write_file(path, buf.str());
}

ShardedSnapshot load_sharded_snapshot(const std::string& path) {
  OBS_SPAN("snapshot.load");
  std::ifstream is(path, std::ios::binary);
  GSOUP_CHECK_MSG(is.good(), "cannot open " << path);
  return read_sharded_snapshot(is);
}

std::vector<ShardSectionReport> manifest_report(const ShardedSnapshot& snap) {
  std::vector<ShardSectionReport> out;
  out.reserve(snap.shards.shards.size());
  for (const ShardGraph& shard : snap.shards.shards) {
    ShardSectionReport rep;
    rep.shard = shard.index;
    rep.owned = shard.num_owned;
    rep.halo = shard.num_halo();
    rep.edges = shard.graph.num_edges();
    // Serialise through the writer's own body function; the framing adds
    // section magic (u32) + length (u64) + CRC (u32) = 16 bytes.
    std::ostringstream body(std::ios::binary);
    write_shard_body(body, shard);
    rep.section_bytes = static_cast<std::uint64_t>(body.str().size()) + 16;
    out.push_back(rep);
  }
  return out;
}

}  // namespace gsoup::serve
