#include "serve/server.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace gsoup::serve {

BatchServer::BatchServer(const Snapshot& snapshot,
                         std::shared_ptr<const GraphContext> ctx,
                         Tensor features, ServerConfig config)
    : config_(config),
      out_dim_(snapshot.config.out_dim),
      num_nodes_(snapshot.graph.num_nodes) {
  GSOUP_CHECK_MSG(config_.workers >= 1, "server needs >= 1 worker");
  GSOUP_CHECK_MSG(config_.max_batch >= 1, "server needs max_batch >= 1");
  snapshot.validate();
  GSOUP_CHECK_MSG(
      snapshot.matches_graph(ctx->raw()),
      "snapshot was souped on a "
          << snapshot.graph.num_nodes << "-node/" << snapshot.graph.num_edges
          << "-edge graph; the serving graph has " << ctx->raw().num_nodes
          << " nodes/" << ctx->raw().num_edges() << " edges");

  if (config_.mode == QueryMode::kCachedFull) {
    // One full-graph pass, one shared read-only answer table. The engine
    // and its workspaces are scoped to this block — workers only ever
    // read cached_logits_, so W workers cost no extra workspace at all.
    InferenceEngine engine(snapshot.config, snapshot.params, ctx, features,
                           QueryMode::kCachedFull);
    cached_logits_ = engine.full_logits();  // shares storage, outlives engine
  } else {
    // On a reordered (GraphPlan) context, permute the feature rows ONCE
    // here and share the plan-space tensor read-only across every
    // worker's engine — W private permuted copies would defeat the
    // "features shared, never copied per engine" contract.
    Tensor worker_features = features;
    FeatureSpace space = FeatureSpace::kOriginal;
    if (ctx->plan() != nullptr && ctx->plan()->active()) {
      worker_features = ctx->plan()->permute_rows(features);
      space = FeatureSpace::kPlan;
    }
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) {
      auto engine = std::make_unique<InferenceEngine>(
          snapshot.config, snapshot.params, ctx, worker_features,
          config_.mode, space);
      auto worker = std::make_unique<Worker>(std::move(engine));
      worker->node_ids.reserve(static_cast<std::size_t>(config_.max_batch));
      worker->logits = Tensor::empty({config_.max_batch, out_dim_});
      free_workers_.push_back(worker.get());
      workers_.push_back(std::move(worker));
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

BatchServer::~BatchServer() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // ThreadPool's destructor drains any batches already dispatched.
  pool_.reset();
}

std::future<Prediction> BatchServer::submit(std::int64_t node) {
  // Reject bad ids at the door: a batch is shared by many clients, and an
  // out-of-range id that only failed inside the engine would poison every
  // other query coalesced with it.
  GSOUP_CHECK_MSG(node >= 0 && node < num_nodes_,
                  "submit node " << node << " out of range [0, " << num_nodes_
                                 << ")");
  Pending p;
  p.node = node;
  p.enqueued = Clock::now();
  std::future<Prediction> fut = p.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    GSOUP_CHECK_MSG(!stop_, "submit on a stopped server");
    pending_.push_back(std::move(p));
    ++submitted_;
  }
  cv_.notify_all();
  return fut;
}

void BatchServer::dispatcher_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    // Coalesce: flush when a full batch is ready, the oldest query's
    // latency budget has elapsed, a drain() asked for an immediate flush,
    // or the server is shutting down.
    if (static_cast<std::int64_t>(pending_.size()) < config_.max_batch &&
        !stop_ && !flush_) {
      const auto deadline =
          pending_.front().enqueued +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.max_delay_ms));
      if (Clock::now() < deadline) {
        cv_.wait_until(lock, deadline);
        continue;  // re-evaluate: more arrivals, stop, or budget elapsed
      }
    }
    const std::size_t take = std::min<std::size_t>(
        pending_.size(), static_cast<std::size_t>(config_.max_batch));
    std::vector<Pending> batch;
    batch.reserve(take);
    std::move(pending_.begin(),
              pending_.begin() + static_cast<std::ptrdiff_t>(take),
              std::back_inserter(batch));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    lock.unlock();
    pool_->submit(
        [this, b = std::make_shared<std::vector<Pending>>(
                   std::move(batch))]() mutable { run_batch(std::move(*b)); });
    lock.lock();
  }
}

BatchServer::Worker* BatchServer::acquire_worker() {
  std::unique_lock lock(worker_mutex_);
  worker_cv_.wait(lock, [this] { return !free_workers_.empty(); });
  Worker* w = free_workers_.front();
  free_workers_.pop_front();
  return w;
}

void BatchServer::release_worker(Worker* w) {
  {
    std::lock_guard lock(worker_mutex_);
    free_workers_.push_back(w);
  }
  worker_cv_.notify_one();
}

std::shared_ptr<const exec::SubgraphPlan> BatchServer::lookup_plan(
    const std::vector<std::int64_t>& key) {
  std::lock_guard lock(plan_cache_mutex_);
  const auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    ++plan_cache_misses_;
    return nullptr;
  }
  ++plan_cache_hits_;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);  // touch
  return it->second->second;
}

void BatchServer::store_plan(const std::vector<std::int64_t>& key,
                             std::shared_ptr<const exec::SubgraphPlan> plan) {
  std::lock_guard lock(plan_cache_mutex_);
  if (plan_cache_.count(key) != 0) return;  // another worker raced us in
  plan_lru_.emplace_front(key, std::move(plan));
  plan_cache_.emplace(key, plan_lru_.begin());
  while (plan_cache_.size() > config_.plan_cache_capacity) {
    plan_cache_.erase(plan_lru_.back().first);
    plan_lru_.pop_back();
  }
}

void BatchServer::run_batch(std::vector<Pending> batch) {
  const auto n = static_cast<std::int64_t>(batch.size());
  const bool cached = config_.mode == QueryMode::kCachedFull;

  Worker* w = nullptr;
  const float* batch_rows = nullptr;  // subgraph mode: worker output
  bool failed = false;
  std::string error;
  if (!cached) {
    w = acquire_worker();
    w->node_ids.clear();
    for (const auto& p : batch) w->node_ids.push_back(p.node);
    Tensor out = w->logits.view_prefix({n, out_dim_});
    try {
      if (config_.plan_cache_capacity > 0) {
        // Plan LRU: a repeated batch (skewed distributions) reuses its
        // compiled L-hop expansion; a miss compiles it on this worker's
        // engine and publishes it for every worker.
        std::shared_ptr<const exec::SubgraphPlan> plan =
            lookup_plan(w->node_ids);
        if (plan == nullptr) {
          plan = w->engine->compile_query_plan(w->node_ids);
          store_plan(w->node_ids, plan);
        }
        w->engine->query(*plan, out);
      } else {
        w->engine->query(w->node_ids, out);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    batch_rows = out.data();
  }
  // Cached mode needs no engine and no workspace: every answer is a
  // read-only row of the shared table, indexed by the query's node id.

  const auto done = Clock::now();
  // Record stats BEFORE fulfilling promises: a client woken by its future
  // must see this batch reflected in stats(). Failed batches are excluded
  // entirely — queries that got an exception were not answered, and
  // counting them would inflate QPS and pollute the latency percentiles.
  if (!failed) {
    std::lock_guard lock(stats_mutex_);
    ++batches_;
    for (const auto& p : batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(done - p.enqueued)
              .count();
      ++queries_answered_;
      max_latency_ms_ = std::max(max_latency_ms_, ms);
      if (latencies_ms_.size() < kLatencyWindow) {
        latencies_ms_.push_back(ms);
      } else {
        latencies_ms_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      }
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    Pending& p = batch[static_cast<std::size_t>(i)];
    if (failed) {
      p.promise.set_exception(
          std::make_exception_ptr(CheckError("batch failed: " + error)));
      continue;
    }
    const float* row = cached ? cached_logits_.data() + p.node * out_dim_
                              : batch_rows + i * out_dim_;
    Prediction pred;
    pred.node = p.node;
    pred.label = static_cast<std::int32_t>(ops::argmax_row(row, out_dim_));
    pred.score = row[pred.label];
    p.promise.set_value(pred);
  }
  if (w != nullptr) release_worker(w);

  {
    std::lock_guard lock(mutex_);
    completed_ += static_cast<std::uint64_t>(n);
  }
  drained_cv_.notify_all();
}

void BatchServer::drain() {
  std::unique_lock lock(mutex_);
  // The caller has declared no more work is coming: dispatch any waiting
  // partial batch immediately instead of letting it sit out the latency
  // budget.
  flush_ = true;
  cv_.notify_all();
  drained_cv_.wait(lock, [this] { return completed_ == submitted_; });
  flush_ = false;
}

ServerStats BatchServer::stats() const {
  ServerStats s;
  std::lock_guard lock(stats_mutex_);
  s.batches = batches_;
  s.queries = queries_answered_;
  if (s.batches > 0) {
    s.mean_batch = static_cast<double>(s.queries) /
                   static_cast<double>(s.batches);
  }
  if (!latencies_ms_.empty()) {
    std::vector<double> sorted = latencies_ms_;  // ≤ kLatencyWindow samples
    std::sort(sorted.begin(), sorted.end());
    s.p50_latency_ms = percentile_sorted(sorted, 0.50);
    s.p99_latency_ms = percentile_sorted(sorted, 0.99);
    s.max_latency_ms = max_latency_ms_;
  }
  {
    std::lock_guard cache_lock(plan_cache_mutex_);
    s.plan_cache_hits = plan_cache_hits_;
    s.plan_cache_misses = plan_cache_misses_;
  }
  return s;
}

}  // namespace gsoup::serve
