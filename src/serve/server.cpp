#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace gsoup::serve {

namespace {
/// Trace-phase span names, indexed by Pending::phase.
constexpr const char* kQueryPhaseNames[] = {"serve.pending",
                                            "serve.queue_wait", "serve.exec"};
}  // namespace

const char* serve_error_name(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kOverloaded: return "Overloaded";
    case ServeErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ServeErrorCode::kExecFailed: return "ExecFailed";
    case ServeErrorCode::kShutdown: return "Shutdown";
    case ServeErrorCode::kReplicasExhausted: return "ReplicasExhausted";
  }
  return "Unknown";
}

const Prediction& QueryResult::value() const {
  GSOUP_CHECK_MSG(ok_, "QueryResult::value() on error result: "
                           << serve_error_name(error_.code) << " ("
                           << error_.message << ")");
  return pred_;
}

const ServeError& QueryResult::error() const {
  GSOUP_CHECK_MSG(!ok_, "QueryResult::error() on success result");
  return error_;
}

BatchServer::BatchServer(const Snapshot& snapshot,
                         std::shared_ptr<const GraphContext> ctx,
                         Tensor features, ServerConfig config)
    : config_(config),
      out_dim_(snapshot.config.out_dim),
      num_nodes_(snapshot.graph.num_nodes),
      snap_config_(snapshot.config),
      snap_params_(snapshot.params),
      ctx_(std::move(ctx)),
      worker_features_(features) {
  GSOUP_CHECK_MSG(config_.workers >= 1, "server needs >= 1 worker");
  GSOUP_CHECK_MSG(config_.max_batch >= 1, "server needs max_batch >= 1");
  GSOUP_CHECK_MSG(config_.max_pending >= 1, "server needs max_pending >= 1");
  snapshot.validate();
  GSOUP_CHECK_MSG(
      snapshot.matches_graph(ctx_->raw()),
      "snapshot was souped on a "
          << snapshot.graph.num_nodes << "-node/" << snapshot.graph.num_edges
          << "-edge graph; the serving graph has " << ctx_->raw().num_nodes
          << " nodes/" << ctx_->raw().num_edges() << " edges");

  if (config_.report_ids != nullptr) {
    GSOUP_CHECK_MSG(static_cast<std::int64_t>(config_.report_ids->size()) >=
                        num_nodes_,
                    "report_ids map smaller than the serving graph");
  }

  // Registry handles, resolved once so the serving hot paths never touch
  // the registry mutex. These aggregate across every BatchServer in the
  // process sharing the same (prefix, labels); shard servers register
  // their own `serve.shard.*{shard="i"}` families instead. Per-server
  // exact counts stay in the local atomics.
  const std::string& pre = config_.metric_prefix;
  const std::string& lbl = config_.metric_labels;
  m_submitted_ = &obs::counter(pre + "submitted", lbl,
                               "Queries admitted to the pending queue");
  m_queries_ = &obs::counter(pre + "queries", lbl,
                             "Queries answered with a prediction");
  m_batches_ = &obs::counter(pre + "batches", lbl, "Batches executed");
  m_rejected_ = &obs::counter(pre + "rejected", lbl,
                              "Queries shed by admission control");
  m_deadline_expired_ = &obs::counter(
      pre + "deadline_expired", lbl, "Queries expired before execution");
  m_failed_batches_ = &obs::counter(pre + "failed_batches", lbl,
                                    "Batches whose execution threw");
  m_failed_queries_ = &obs::counter(pre + "failed_queries", lbl,
                                    "Queries resolved ExecFailed");
  m_shutdown_failed_ = &obs::counter(pre + "shutdown_failed", lbl,
                                     "Queries resolved Shutdown");
  m_retries_ = &obs::counter(pre + "retries_observed", lbl,
                             "Client-side retries reported to the server");
  m_pending_depth_ =
      &obs::gauge(pre + "pending_depth", lbl, "Current pending-queue depth");
  m_latency_hist_ = &obs::histogram(
      pre + "latency_ms", lbl, {},
      "End-to-end latency of answered queries in milliseconds");
  m_batch_size_ =
      &obs::histogram(pre + "batch_size", lbl, {}, "Executed batch sizes");

  const bool reordered = ctx_->plan() != nullptr && ctx_->plan()->active();
  const bool half = config_.precision != Precision::kFp32;
  GSOUP_CHECK_MSG(config_.half_features == nullptr || half,
                  "half_features set but precision is fp32");
  if (config_.half_features != nullptr) {
    // Pre-quantized (plan-space) slice from the sharded router: all R
    // replicas x W workers serve from this one buffer.
    half_features_ = config_.half_features;
    feature_space_ = reordered ? FeatureSpace::kPlan : FeatureSpace::kOriginal;
    worker_features_ = Tensor{};
  }
  if (config_.mode == QueryMode::kCachedFull) {
    // One full-graph pass, one shared read-only answer table. The engine
    // and its workspaces are scoped to this block — workers only ever
    // read the cached table, so W workers cost no extra workspace at all.
    // Half precision keeps the table quantized (half the steady-state
    // footprint); answers widen the row at lookup.
    InferenceEngine engine(snap_config_, snap_params_, ctx_, features,
                           QueryMode::kCachedFull, feature_space_,
                           config_.precision, half_features_);
    if (half) {
      cached_logits_half_ = engine.full_logits_half();  // shares storage
    } else {
      cached_logits_ = engine.full_logits();  // shares storage
    }
  } else {
    // On a reordered (GraphPlan) context, permute the feature rows ONCE
    // here and share the plan-space tensor read-only across every
    // worker's engine — W private permuted copies would defeat the
    // "features shared, never copied per engine" contract.
    if (reordered && half_features_ == nullptr) {
      worker_features_ = ctx_->plan()->permute_rows(features);
      feature_space_ = FeatureSpace::kPlan;
    }
    if (half && half_features_ == nullptr) {
      // Quantize the (possibly permuted) features once; every worker
      // engine shares this slice and the fp32 handle is dropped.
      half_features_ = std::make_shared<const HalfBuffer>(
          HalfBuffer::quantize(worker_features_, config_.precision));
      worker_features_ = Tensor{};
    }
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) {
      auto worker = std::make_unique<Worker>(build_worker_engine());
      worker->node_ids.reserve(static_cast<std::size_t>(config_.max_batch));
      worker->logits = Tensor::empty({config_.max_batch, out_dim_});
      free_workers_.push_back(worker.get());
      workers_.push_back(std::move(worker));
    }
  }
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

BatchServer::~BatchServer() {
  // Two-phase shutdown. Phase 1: close intake — stop_ makes every further
  // submit resolve kShutdown immediately. Phase 2: the dispatcher either
  // drains the queue into batches (drain_on_shutdown) or fails everything
  // pending; the ThreadPool destructor then runs every dispatched batch to
  // completion, so by the time members are destroyed every promise a
  // client holds a future for has been resolved.
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.reset();
}

std::unique_ptr<InferenceEngine> BatchServer::build_worker_engine() const {
  auto engine = std::make_unique<InferenceEngine>(
      snap_config_, snap_params_, ctx_, worker_features_, config_.mode,
      feature_space_, config_.precision, half_features_);
  // Sharded serving: the guard rides through isolation rebuilds too — a
  // fresh engine must enforce the same halo-sufficiency invariant.
  if (config_.row_guard != nullptr) {
    engine->set_row_guard(*config_.row_guard);
  }
  return engine;
}

std::future<QueryResult> BatchServer::submit(std::int64_t node) {
  return submit(node, config_.default_deadline_ms);
}

std::future<QueryResult> BatchServer::submit(std::int64_t node,
                                             double deadline_ms) {
  // Reject bad ids at the door, synchronously: a batch is shared by many
  // clients, and an out-of-range id that only failed inside the engine
  // would poison every other query coalesced with it. This is a caller
  // bug, not load, so it is the one submit failure that still throws.
  GSOUP_CHECK_MSG(node >= 0 && node < num_nodes_,
                  "submit node " << node << " out of range [0, " << num_nodes_
                                 << ")");
  Pending p;
  p.node = node;
  p.qid = next_qid_.fetch_add(1, std::memory_order_relaxed);
  p.enqueued = Clock::now();
  if (deadline_ms > 0.0) {
    p.has_deadline = true;
    p.deadline = p.enqueued + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      deadline_ms));
  }
  std::future<QueryResult> fut = p.promise.get_future();
  // The lifecycle span opens at submit for every query — including ones
  // refused at the door, whose timeline is just a short serve.pending.
  trace_begin(p);

  Pending shed;       // kShedOldest victim, resolved outside the lock
  bool have_shed = false;
  bool rejected = false;
  bool shutdown = false;
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      shutdown = true;
    } else if (pending_.size() >= config_.max_pending) {
      if (config_.admission == AdmissionPolicy::kRejectNew) {
        rejected = true;
      } else {
        shed = std::move(pending_.front());
        pending_.pop_front();
        have_shed = true;
        pending_.push_back(std::move(p));
        ++submitted_;
      }
    } else {
      pending_.push_back(std::move(p));
      ++submitted_;
    }
    m_pending_depth_->set(static_cast<double>(pending_.size()));
  }
  if (shutdown) {
    shutdown_failed_.fetch_add(1, std::memory_order_relaxed);
    m_shutdown_failed_->inc();
    trace_end(p);
    p.promise.set_value(QueryResult::failure(ServeErrorCode::kShutdown,
                                             "server is shutting down"));
    return fut;
  }
  if (rejected) {
    // Refused at the door: never admitted, so it is NOT in submitted_ and
    // needs no completion accounting — only the rejected counter.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->inc();
    trace_end(p);
    p.promise.set_value(QueryResult::failure(
        ServeErrorCode::kOverloaded,
        "pending queue full (max_pending=" +
            std::to_string(config_.max_pending) + ")"));
    return fut;
  }
  m_submitted_->inc();
  if (have_shed) {
    // The evicted query WAS admitted earlier, so resolve it through the
    // normal completion path to keep drain()'s submitted==completed
    // invariant exact.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->inc();
    finish_query(shed, QueryResult::failure(ServeErrorCode::kOverloaded,
                                            "shed by a newer query "
                                            "(kShedOldest)"));
  }
  cv_.notify_all();
  return fut;
}

void BatchServer::record_retries(std::uint64_t n) {
  retries_observed_.fetch_add(n, std::memory_order_relaxed);
  m_retries_->inc(n);
}

void BatchServer::trace_begin(Pending& p) {
  if (!obs::trace::enabled()) return;
  obs::trace::async_begin("serve.query", p.qid);
  obs::trace::async_begin(kQueryPhaseNames[0], p.qid);
}

void BatchServer::trace_advance(Pending& p, std::uint8_t next_phase) {
  const std::uint8_t prev = p.phase;
  p.phase = next_phase;
  if (!obs::trace::enabled()) return;
  obs::trace::async_end(kQueryPhaseNames[prev], p.qid);
  obs::trace::async_begin(kQueryPhaseNames[next_phase], p.qid);
}

void BatchServer::trace_end(Pending& p) {
  if (!obs::trace::enabled()) return;
  obs::trace::async_end(kQueryPhaseNames[p.phase], p.qid);
  obs::trace::async_end("serve.query", p.qid);
}

void BatchServer::finish_query(Pending& p, QueryResult result) {
  p.resolved = true;
  trace_end(p);
  p.promise.set_value(std::move(result));
  {
    std::lock_guard lock(mutex_);
    ++completed_;
  }
  drained_cv_.notify_all();
}

void BatchServer::fail_queries(std::vector<Pending>& batch,
                               ServeErrorCode code, const char* message) {
  std::uint64_t n = 0;
  for (auto& p : batch) {
    if (p.resolved) continue;
    p.resolved = true;
    trace_end(p);
    p.promise.set_value(QueryResult::failure(code, message));
    ++n;
  }
  if (n == 0) return;
  if (code == ServeErrorCode::kShutdown) {
    shutdown_failed_.fetch_add(n, std::memory_order_relaxed);
    m_shutdown_failed_->inc(n);
  } else if (code == ServeErrorCode::kDeadlineExceeded) {
    deadline_expired_.fetch_add(n, std::memory_order_relaxed);
    m_deadline_expired_->inc(n);
  } else {
    failed_queries_.fetch_add(n, std::memory_order_relaxed);
    m_failed_queries_->inc(n);
  }
  {
    std::lock_guard lock(mutex_);
    completed_ += n;
  }
  drained_cv_.notify_all();
}

void BatchServer::dispatcher_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    if (stop_ && !config_.drain_on_shutdown) {
      // Fail-fast teardown: resolve everything still queued without
      // touching an engine.
      std::vector<Pending> doomed;
      doomed.reserve(pending_.size());
      std::move(pending_.begin(), pending_.end(), std::back_inserter(doomed));
      pending_.clear();
      m_pending_depth_->set(0.0);
      lock.unlock();
      fail_queries(doomed, ServeErrorCode::kShutdown,
                   "server shut down before dispatch");
      lock.lock();
      continue;
    }
    // Coalesce: flush when a full batch is ready, the oldest query's
    // latency budget has elapsed, a drain() asked for an immediate flush,
    // or the server is shutting down.
    if (static_cast<std::int64_t>(pending_.size()) < config_.max_batch &&
        !stop_ && !flush_) {
      const auto deadline =
          pending_.front().enqueued +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.max_delay_ms));
      if (Clock::now() < deadline) {
        cv_.wait_until(lock, deadline);
        continue;  // re-evaluate: more arrivals, stop, or budget elapsed
      }
    }
    // Form a batch from the front of the queue, sweeping out queries whose
    // deadline already passed — they are failed kDeadlineExceeded without
    // consuming a batch slot or an engine cycle (shed load is cheap load).
    const auto now = Clock::now();
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    batch.reserve(static_cast<std::size_t>(config_.max_batch));
    {
      OBS_SPAN("serve.batch_form");
      while (!pending_.empty() &&
             static_cast<std::int64_t>(batch.size()) < config_.max_batch) {
        Pending p = std::move(pending_.front());
        pending_.pop_front();
        if (p.has_deadline && now >= p.deadline) {
          expired.push_back(std::move(p));
        } else {
          batch.push_back(std::move(p));
        }
      }
    }
    m_pending_depth_->set(static_cast<double>(pending_.size()));
    lock.unlock();
    if (!expired.empty()) {
      fail_queries(expired, ServeErrorCode::kDeadlineExceeded,
                   "deadline expired before dispatch");
    }
    if (!batch.empty()) {
      // Dispatched: each query leaves serve.pending and starts waiting
      // for an in-flight slot + worker.
      for (auto& p : batch) trace_advance(p, 1);
      // Bound in-flight batches to the worker count before handing the
      // batch to the pool: its task queue is unbounded, and parking the
      // whole backlog there would empty pending_ and blind admission
      // control and the deadline sweep to the server's real queue.
      {
        std::unique_lock inflight_lock(inflight_mutex_);
        inflight_cv_.wait(inflight_lock,
                          [this] { return inflight_ < config_.workers; });
        ++inflight_;
      }
      auto task = std::make_shared<BatchTask>();
      task->server = this;
      task->batch = std::move(batch);
      pool_->submit([task] { task->server->run_batch(task->batch); });
    }
    lock.lock();
  }
}

BatchServer::Worker* BatchServer::acquire_worker() {
  std::unique_lock lock(worker_mutex_);
  worker_cv_.wait(lock, [this] { return !free_workers_.empty(); });
  Worker* w = free_workers_.front();
  free_workers_.pop_front();
  return w;
}

void BatchServer::release_worker(Worker* w) {
  {
    std::lock_guard lock(worker_mutex_);
    free_workers_.push_back(w);
  }
  worker_cv_.notify_one();
}

std::shared_ptr<const exec::SubgraphPlan> BatchServer::lookup_plan(
    const std::vector<std::int64_t>& key) {
  std::lock_guard lock(plan_cache_mutex_);
  const auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    ++plan_cache_misses_;
    return nullptr;
  }
  ++plan_cache_hits_;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);  // touch
  return it->second->second;
}

void BatchServer::store_plan(const std::vector<std::int64_t>& key,
                             std::shared_ptr<const exec::SubgraphPlan> plan) {
  std::lock_guard lock(plan_cache_mutex_);
  if (plan_cache_.count(key) != 0) return;  // another worker raced us in
  plan_lru_.emplace_front(key, std::move(plan));
  plan_cache_.emplace(key, plan_lru_.begin());
  while (plan_cache_.size() > config_.plan_cache_capacity) {
    plan_cache_.erase(plan_lru_.back().first);
    plan_lru_.pop_back();
  }
}

void BatchServer::batch_done() {
  {
    std::lock_guard lock(inflight_mutex_);
    --inflight_;
  }
  inflight_cv_.notify_one();
}

void BatchServer::run_batch(std::vector<Pending>& batch) {
  // Second deadline sweep, now that the batch has actually reached an
  // engine: under a slow or faulty worker a query can expire between
  // dispatch and execution, and computing it anyway would burn engine
  // time on an answer nobody is waiting for.
  {
    const auto now = Clock::now();
    std::vector<Pending> expired;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].has_deadline && now >= batch[i].deadline) {
        expired.push_back(std::move(batch[i]));
      } else {
        if (keep != i) batch[keep] = std::move(batch[i]);
        ++keep;
      }
    }
    batch.resize(keep);
    if (!expired.empty()) {
      fail_queries(expired, ServeErrorCode::kDeadlineExceeded,
                   "deadline expired before execution");
    }
    if (batch.empty()) return;
  }
  const auto n = static_cast<std::int64_t>(batch.size());
  const bool cached = config_.mode == QueryMode::kCachedFull;
  for (auto& p : batch) trace_advance(p, 2);

  Worker* w = nullptr;
  const float* batch_rows = nullptr;  // subgraph mode: worker output
  bool failed = false;
  std::string error;
  try {
    OBS_SPAN("serve.batch_exec");
    FAILPOINT("serve.batch_exec");
    if (!config_.exec_failpoint.empty()) {
      failpoint::eval(config_.exec_failpoint.c_str());
    }
    if (!cached) {
      w = acquire_worker();
      w->node_ids.clear();
      for (const auto& p : batch) w->node_ids.push_back(p.node);
      Tensor out = w->logits.view_prefix({n, out_dim_});
      if (config_.plan_cache_capacity > 0) {
        // Plan LRU: a repeated batch (skewed distributions) reuses its
        // compiled L-hop expansion; a miss compiles it on this worker's
        // engine and publishes it for every worker.
        std::shared_ptr<const exec::SubgraphPlan> plan =
            lookup_plan(w->node_ids);
        if (plan == nullptr) {
          plan = w->engine->compile_query_plan(w->node_ids);
          store_plan(w->node_ids, plan);
        }
        w->engine->query(*plan, out);
      } else {
        w->engine->query(w->node_ids, out);
      }
      batch_rows = out.data();
    }
    // Cached mode needs no engine and no workspace: every answer is a
    // read-only row of the shared table, indexed by the query's node id.
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  if (failed) {
    // Worker isolation: only this batch's queries fail, and the engine
    // that threw never serves another batch — its half-mutated executor
    // workspaces are discarded and a fresh engine is rebuilt from the
    // retained snapshot state (parameters are storage-shared, so this is
    // a workspace reallocation, not a weight copy). If even the rebuild
    // throws the old engine is kept: the worker stays in rotation and the
    // next batch gets its own isolated verdict.
    failed_batches_.fetch_add(1, std::memory_order_relaxed);
    m_failed_batches_->inc();
    if (w != nullptr) {
      try {
        w->engine = build_worker_engine();
      } catch (const std::exception&) {
      }
    }
    fail_queries(batch, ServeErrorCode::kExecFailed,
                 ("batch execution failed: " + error).c_str());
    if (w != nullptr) release_worker(w);
    return;
  }

  const auto done = Clock::now();
  // Record stats BEFORE fulfilling promises: a client woken by its future
  // must see this batch reflected in stats(). Failed batches are excluded
  // entirely — queries that got a ServeError were not answered, and
  // counting them would inflate QPS and pollute the latency percentiles.
  {
    std::lock_guard lock(stats_mutex_);
    ++batches_;
    for (const auto& p : batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(done - p.enqueued)
              .count();
      ++queries_answered_;
      latency_data_.observe(ms);
      m_latency_hist_->observe(ms);
    }
  }
  m_batches_->inc();
  m_queries_->inc(static_cast<std::uint64_t>(n));
  m_batch_size_->observe(static_cast<double>(n));
  // Half cached table: widen the answered row into a small per-batch
  // buffer (untracked; the tracked-allocation contract covers tensor
  // workspaces).
  std::vector<float> wide_row;
  const bool cached_half = cached && cached_logits_half_.defined();
  if (cached_half) wide_row.resize(static_cast<std::size_t>(out_dim_));
  for (std::int64_t i = 0; i < n; ++i) {
    Pending& p = batch[static_cast<std::size_t>(i)];
    const float* row;
    if (cached_half) {
      half::widen(cached_logits_half_.data() + p.node * out_dim_,
                  wide_row.data(), out_dim_, cached_logits_half_.precision());
      row = wide_row.data();
    } else if (cached) {
      row = cached_logits_.data() + p.node * out_dim_;
    } else {
      row = batch_rows + i * out_dim_;
    }
    Prediction pred;
    // The shard id-translation boundary: a shard server is submitted
    // shard-local ids but answers in the caller's global numbering.
    pred.node = config_.report_ids != nullptr ? (*config_.report_ids)[p.node]
                                              : p.node;
    pred.label = static_cast<std::int32_t>(ops::argmax_row(row, out_dim_));
    pred.score = row[pred.label];
    p.resolved = true;
    trace_end(p);
    p.promise.set_value(QueryResult::success(pred));
  }
  if (w != nullptr) release_worker(w);

  {
    std::lock_guard lock(mutex_);
    completed_ += static_cast<std::uint64_t>(n);
  }
  drained_cv_.notify_all();
}

void BatchServer::drain() {
  std::unique_lock lock(mutex_);
  // The caller has declared no more work is coming: dispatch any waiting
  // partial batch immediately instead of letting it sit out the latency
  // budget.
  flush_ = true;
  cv_.notify_all();
  drained_cv_.wait(lock, [this] { return completed_ == submitted_; });
  flush_ = false;
}

obs::HistogramData BatchServer::latency_snapshot() const {
  std::lock_guard lock(stats_mutex_);
  return latency_data_;
}

ServerStats BatchServer::stats() const {
  ServerStats s;
  {
    std::lock_guard lock(mutex_);
    s.submitted = submitted_;
  }
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.failed_batches = failed_batches_.load(std::memory_order_relaxed);
  s.failed_queries = failed_queries_.load(std::memory_order_relaxed);
  s.shutdown_failed = shutdown_failed_.load(std::memory_order_relaxed);
  s.retries_observed = retries_observed_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(stats_mutex_);
    s.batches = batches_;
    s.queries = queries_answered_;
    if (s.batches > 0) {
      s.mean_batch =
          static_cast<double>(s.queries) / static_cast<double>(s.batches);
    }
    // Full-lifetime distribution — percentiles, mean and max all describe
    // the same population as the counts (no sampling window).
    if (latency_data_.count() > 0) {
      s.p50_latency_ms = latency_data_.quantile(0.50);
      s.p99_latency_ms = latency_data_.quantile(0.99);
      s.mean_latency_ms = latency_data_.mean();
      s.max_latency_ms = latency_data_.max();
    }
  }
  {
    std::lock_guard cache_lock(plan_cache_mutex_);
    s.plan_cache_hits = plan_cache_hits_;
    s.plan_cache_misses = plan_cache_misses_;
  }
  return s;
}

}  // namespace gsoup::serve
