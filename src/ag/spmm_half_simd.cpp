// See spmm_half_simd.hpp. This TU is compiled with AVX2+F16C enabled
// (portable builds pass -mavx2 -mf16c for this file only); everything
// here is unreachable unless available() returned true.

#include "ag/spmm_half_simd.hpp"

#include "util/check.hpp"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#include <cmath>

namespace gsoup::ag::halfsimd {

namespace {

// Mirrors graph_ops.cpp's prefetch schedule; a half row packs twice the
// elements per cache line, so half the line touches.
constexpr std::int64_t kPrefetchDist = 12;

template <int D>
inline void prefetch_half_row(const std::uint16_t* p) {
  constexpr int kPerLine = 32;
  __builtin_prefetch(p, 0, 3);
  if constexpr (D > kPerLine) __builtin_prefetch(p + kPerLine, 0, 3);
  if constexpr (D > 2 * kPerLine) {
    __builtin_prefetch(p + 2 * kPerLine, 0, 3);
    __builtin_prefetch(p + 3 * kPerLine, 0, 3);
  }
}

/// Widen 8 stored elements to an fp32 lane. fp16 is one vcvtph2ps —
/// bit-exact to the scalar codec (tests/test_half.cpp asserts this over
/// every pattern); bf16 is a zero-extend + shift, exact by construction.
template <Precision P>
inline __m256 widen8(const std::uint16_t* p) {
  if constexpr (P == Precision::kFp16) {
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  } else {
    const __m256i wide = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    return _mm256_castsi256_ps(_mm256_slli_epi32(wide, 16));
  }
}

/// acc += w * x per lane, matching the contraction the compiler gives
/// the fp32 kernels' `acc[j] += w * x[j]` loops in this build: fused
/// when FMA is enabled (-march=native), separate round-twice mul+add
/// otherwise (portable). Bit-parity with the fp32 twin depends on this.
inline __m256 fma8(__m256 acc, __m256 w, __m256 x) {
#ifdef __FMA__
  return _mm256_fmadd_ps(w, x, acc);
#else
  return _mm256_add_ps(acc, _mm256_mul_ps(w, x));
#endif
}

inline float fma1(float acc, float w, float x) {
#ifdef __FMA__
  return std::fma(w, x, acc);
#else
  return acc + w * x;
#endif
}

/// Fixed-width row kernel: the intrinsic mirror of spmm_rows_fixed —
/// same short-row accumulate fast path, same dual-accumulator edge
/// pairing, same merge — with D/8 __m256 lanes per accumulator.
template <int D, Precision P, bool Overwrite, typename Idx>
void rows_fixed(const std::int64_t* __restrict__ indptr,
                const Idx* __restrict__ indices,
                const float* __restrict__ values,
                const std::uint16_t* __restrict__ px, float* __restrict__ py,
                std::int64_t num_edges, std::int64_t lo, std::int64_t hi) {
  constexpr int V = D / 8;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    float* __restrict__ yrow = py + i * D;
    if constexpr (!Overwrite) {
      if (end - begin <= 4) {
        __m256 acc[V];
        for (int v = 0; v < V; ++v) acc[v] = _mm256_loadu_ps(yrow + 8 * v);
        for (std::int64_t e = begin; e < end; ++e) {
          if (e + kPrefetchDist < num_edges) {
            prefetch_half_row<D>(
                px + static_cast<std::int64_t>(indices[e + kPrefetchDist]) *
                         D);
          }
          const __m256 w = _mm256_set1_ps(values[e]);
          const std::uint16_t* __restrict__ xrow =
              px + static_cast<std::int64_t>(indices[e]) * D;
          for (int v = 0; v < V; ++v) {
            acc[v] = fma8(acc[v], w, widen8<P>(xrow + 8 * v));
          }
        }
        for (int v = 0; v < V; ++v) _mm256_storeu_ps(yrow + 8 * v, acc[v]);
        continue;
      }
    }
    __m256 acc0[V], acc1[V];
    for (int v = 0; v < V; ++v) acc1[v] = _mm256_setzero_ps();
    if constexpr (Overwrite) {
      for (int v = 0; v < V; ++v) acc0[v] = _mm256_setzero_ps();
    } else {
      for (int v = 0; v < V; ++v) acc0[v] = _mm256_loadu_ps(yrow + 8 * v);
    }
    std::int64_t e = begin;
    for (; e + 1 < end; e += 2) {
      if (e + kPrefetchDist + 1 < num_edges) {
        prefetch_half_row<D>(
            px + static_cast<std::int64_t>(indices[e + kPrefetchDist]) * D);
        prefetch_half_row<D>(
            px +
            static_cast<std::int64_t>(indices[e + kPrefetchDist + 1]) * D);
      }
      const __m256 w0 = _mm256_set1_ps(values[e]);
      const __m256 w1 = _mm256_set1_ps(values[e + 1]);
      const std::uint16_t* __restrict__ x0 =
          px + static_cast<std::int64_t>(indices[e]) * D;
      const std::uint16_t* __restrict__ x1 =
          px + static_cast<std::int64_t>(indices[e + 1]) * D;
      for (int v = 0; v < V; ++v) {
        acc0[v] = fma8(acc0[v], w0, widen8<P>(x0 + 8 * v));
        acc1[v] = fma8(acc1[v], w1, widen8<P>(x1 + 8 * v));
      }
    }
    if (e < end) {
      const __m256 w = _mm256_set1_ps(values[e]);
      const std::uint16_t* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * D;
      for (int v = 0; v < V; ++v) {
        acc0[v] = fma8(acc0[v], w, widen8<P>(xrow + 8 * v));
      }
    }
    for (int v = 0; v < V; ++v) {
      _mm256_storeu_ps(yrow + 8 * v, _mm256_add_ps(acc0[v], acc1[v]));
    }
  }
}

/// Width-generic fallback, mirroring spmm_rows_generic: accumulate
/// straight into the output row, vector main loop + scalar tail (each
/// element still sees the identical per-edge operation sequence).
template <Precision P, bool Overwrite, typename Idx>
void rows_generic(const std::int64_t* __restrict__ indptr,
                  const Idx* __restrict__ indices,
                  const float* __restrict__ values,
                  const std::uint16_t* __restrict__ px,
                  float* __restrict__ py, std::int64_t d, std::int64_t lo,
                  std::int64_t hi) {
  const std::int64_t dv = d & ~std::int64_t{7};
  for (std::int64_t i = lo; i < hi; ++i) {
    float* __restrict__ yrow = py + i * d;
    if constexpr (Overwrite) {
      for (std::int64_t j = 0; j < dv; j += 8) {
        _mm256_storeu_ps(yrow + j, _mm256_setzero_ps());
      }
      for (std::int64_t j = dv; j < d; ++j) yrow[j] = 0.0f;
    }
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float wv = values[e];
      const __m256 w = _mm256_set1_ps(wv);
      const std::uint16_t* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * d;
      for (std::int64_t j = 0; j < dv; j += 8) {
        _mm256_storeu_ps(
            yrow + j, fma8(_mm256_loadu_ps(yrow + j), w, widen8<P>(xrow + j)));
      }
      for (std::int64_t j = dv; j < d; ++j) {
        yrow[j] = fma1(yrow[j], wv, half::widen_one(xrow[j], P));
      }
    }
  }
}

template <Precision P, bool Overwrite, typename Idx>
void rows_dispatch(const std::int64_t* indptr, const Idx* indices,
                   const float* values, const std::uint16_t* px, float* py,
                   std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                   std::int64_t hi) {
  switch (d) {
    case 8:
      rows_fixed<8, P, Overwrite, Idx>(indptr, indices, values, px, py,
                                       num_edges, lo, hi);
      return;
    case 16:
      rows_fixed<16, P, Overwrite, Idx>(indptr, indices, values, px, py,
                                        num_edges, lo, hi);
      return;
    case 32:
      rows_fixed<32, P, Overwrite, Idx>(indptr, indices, values, px, py,
                                        num_edges, lo, hi);
      return;
    case 64:
      rows_fixed<64, P, Overwrite, Idx>(indptr, indices, values, px, py,
                                        num_edges, lo, hi);
      return;
    case 128:
      rows_fixed<128, P, Overwrite, Idx>(indptr, indices, values, px, py,
                                         num_edges, lo, hi);
      return;
    default:
      rows_generic<P, Overwrite, Idx>(indptr, indices, values, px, py, d, lo,
                                      hi);
  }
}

template <typename Idx>
void rows_entry(const std::int64_t* indptr, const Idx* indices,
                const float* values, const std::uint16_t* px, float* py,
                std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                std::int64_t hi, Precision prec, bool overwrite) {
  if (prec == Precision::kFp16) {
    if (overwrite) {
      rows_dispatch<Precision::kFp16, true, Idx>(indptr, indices, values, px,
                                                 py, d, num_edges, lo, hi);
    } else {
      rows_dispatch<Precision::kFp16, false, Idx>(indptr, indices, values, px,
                                                  py, d, num_edges, lo, hi);
    }
  } else {
    if (overwrite) {
      rows_dispatch<Precision::kBf16, true, Idx>(indptr, indices, values, px,
                                                 py, d, num_edges, lo, hi);
    } else {
      rows_dispatch<Precision::kBf16, false, Idx>(indptr, indices, values, px,
                                                  py, d, num_edges, lo, hi);
    }
  }
}

}  // namespace

bool available() {
  static const bool ok = __builtin_cpu_supports("avx2") &&
                         __builtin_cpu_supports("f16c");
  return ok;
}

void spmm_rows_half(const std::int64_t* indptr, const std::int32_t* indices,
                    const float* values, const std::uint16_t* px, float* py,
                    std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                    std::int64_t hi, Precision prec, bool overwrite) {
  rows_entry(indptr, indices, values, px, py, d, num_edges, lo, hi, prec,
             overwrite);
}

void spmm_rows_half(const std::int64_t* indptr, const std::uint16_t* indices,
                    const float* values, const std::uint16_t* px, float* py,
                    std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                    std::int64_t hi, Precision prec, bool overwrite) {
  rows_entry(indptr, indices, values, px, py, d, num_edges, lo, hi, prec,
             overwrite);
}

}  // namespace gsoup::ag::halfsimd

#else  // !(__AVX2__ && __F16C__): non-x86 target or flags not applied.

namespace gsoup::ag::halfsimd {

bool available() { return false; }

void spmm_rows_half(const std::int64_t*, const std::int32_t*, const float*,
                    const std::uint16_t*, float*, std::int64_t, std::int64_t,
                    std::int64_t, std::int64_t, Precision, bool) {
  GSOUP_CHECK_MSG(false, "halfsimd kernels not compiled into this binary");
}

void spmm_rows_half(const std::int64_t*, const std::uint16_t*, const float*,
                    const std::uint16_t*, float*, std::int64_t, std::int64_t,
                    std::int64_t, std::int64_t, Precision, bool) {
  GSOUP_CHECK_MSG(false, "halfsimd kernels not compiled into this binary");
}

}  // namespace gsoup::ag::halfsimd

#endif
