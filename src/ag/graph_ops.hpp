// Differentiable sparse ops over CSR graphs: SpMM (message passing for
// GCN/SAGE) and the GAT per-edge attention aggregation with edge softmax.
//
// The CSR operands are owned by the caller (GraphContext in src/nn) and
// must outlive the autodiff tape. SpMM takes both the forward matrix and
// its transpose so the backward pass dX = Aᵀ·dY is a second race-free
// row-parallel SpMM rather than an atomic scatter.
#pragma once

#include "ag/value.hpp"
#include "graph/csr.hpp"
#include "graph/sampling.hpp"

namespace gsoup::graph {
struct BlockedCsr;
}

namespace gsoup::ag {

/// Y += A · X for weighted CSR A, scheduled over pre-computed row ranges
/// of approximately equal nnz (binary search over indptr) so power-law
/// degree distributions do not serialise on the hub rows. Common feature
/// widths (8/16/32/64/128) run width-specialised dual-accumulator kernels.
/// Used by the spmm backward pass. X is [n, d], Y is [n, d].
void spmm_accumulate(const Csr& a, const Tensor& x, Tensor& y);

/// Y = A · X, same kernels but fused with the output initialisation (no
/// separate zero pass, Y written once per row). Forward-pass workhorse;
/// Y may be uninitialised storage.
void spmm_overwrite(const Csr& a, const Tensor& x, Tensor& y);

/// Y += A · X, the seed's naive row-parallel loop. Test oracle and bench
/// baseline for the kernels above.
void spmm_reference(const Csr& a, const Tensor& x, Tensor& y);

/// Y(0..num_rows) = A · X for a raw CSR given by spans (num_rows =
/// indptr.size() - 1; indices address rows of X, which may have more rows
/// than Y — the bipartite-block case). Same edge-balanced schedule and
/// width-specialised kernels as spmm_overwrite; `spmm_overwrite` itself is
/// this function applied to a Csr's members. Exposed so the serving
/// engine can run message passing over block-local CSRs that are not Csr
/// objects, with bitwise-identical numerics to the training forward.
void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const Tensor& x,
                          Tensor& y);

/// Y = A · X (and Y += A · X) over a cached graph::BlockedCsr layout: the
/// same width-specialised dual-accumulator kernels, but the edge-balanced
/// row blocks come pre-computed from the layout (no binary search per
/// launch) and the gather loop runs at the layout's column-index width
/// (16-bit on graphs under 2^16 nodes). Bit-identical results to
/// spmm_overwrite/spmm_accumulate over the CSR the layout was built from.
void spmm_blocked_overwrite(const graph::BlockedCsr& a, const Tensor& x,
                            Tensor& y);
void spmm_blocked_accumulate(const graph::BlockedCsr& a, const Tensor& x,
                             Tensor& y);

/// Autograd-free multi-head GAT attention forward over a raw CSR
/// (num_dst = indptr.size() - 1; indices address rows of h_src /
/// score_src, dst i addresses row i of score_dst):
///   z_e      = score_dst[i, h] + score_src[src_e, h]
///   alpha_e  = softmax over in-edges of i of LeakyReLU(z_e)
///   out[i,·] = Σ_e alpha_e · h_src[src_e, ·]   (per head)
/// `alpha` is an [E, heads] workspace (overwritten; retained by the
/// training path for backward, scratch for serving); `out` is overwritten.
/// Shared by ag::gat_attention and the serving engine.
void gat_attention_forward(std::span<const std::int64_t> indptr,
                           std::span<const std::int32_t> indices,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out);

/// Y = A · X where A is a weighted CSR (in-edge convention: row i of A
/// holds weights of edges (j -> i)). `a_transpose` must be the weighted
/// transpose of `a`; both must carry values.
Value spmm(const Csr& a, const Csr& a_transpose, const Value& x);

/// spmm with optional cached layouts (see GraphContext::spmm_layout()):
/// the forward runs over `layout` and the backward over `layout_t` when
/// non-null, falling back to the CSRs otherwise. The layouts must have
/// been built from `a` / `a_transpose` respectively.
Value spmm(const Csr& a, const Csr& a_transpose, const Value& x,
           const graph::BlockedCsr* layout,
           const graph::BlockedCsr* layout_t);

/// Multi-head GAT aggregation (Veličković et al.):
///   z_e      = score_dst[dst_e, h] + score_src[src_e, h]
///   alpha_e  = softmax over in-edges of dst_e of LeakyReLU(z_e)
///   out[i,h] = Σ_{e: dst_e = i} alpha_e · h_src[src_e, h]
///
/// `h` is [n, heads*dim]; `score_dst`/`score_src` are [n, heads] (the aᵀWh
/// dot products, computed by matmul so their parameter grads come for
/// free). `graph` is the unweighted structure (with self loops);
/// `graph_t` its transpose with edge-id mapping, used by the backward
/// scatter to sources. Saves the attention coefficients (E × heads) for
/// the backward pass — the memory signature that makes learned souping
/// with GAT the most memory-hungry configuration in the paper (Fig. 4b).
Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope);

/// Bipartite-block SpMM for minibatch training: Y[i] = Σ_e w_e X[src_e]
/// over a sampled Block. X rows are block-local (size block.num_src()).
Value block_spmm(const Block& block, const Value& x);

/// Narrow a block-local matrix to its first `rows` rows (the destination
/// nodes of a block). Gradient scatters back into the leading rows.
Value narrow_rows(const Value& x, std::int64_t rows);

/// Gather rows of a constant feature matrix by global index (minibatch
/// input construction; non-differentiable w.r.t. indices, and `features`
/// is expected to be a constant).
Value gather_rows(const Value& features,
                  std::span<const std::int64_t> row_ids);

}  // namespace gsoup::ag
