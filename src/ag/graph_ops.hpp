// Differentiable sparse ops over CSR graphs: SpMM (message passing for
// GCN/SAGE) and the GAT per-edge attention aggregation with edge softmax.
//
// The CSR operands are owned by the caller (GraphContext in src/nn) and
// must outlive the autodiff tape. SpMM takes both the forward matrix and
// its transpose so the backward pass dX = Aᵀ·dY is a second race-free
// row-parallel SpMM rather than an atomic scatter; GAT attention and the
// minibatch block SpMM get the same treatment through cached
// graph::BlockedCsr transposes that carry per-edge positions back into
// the forward CSR.
#pragma once

#include "ag/value.hpp"
#include "graph/csr.hpp"
#include "graph/sampling.hpp"
#include "tensor/half.hpp"

namespace gsoup::graph {
struct BlockedCsr;
}

namespace gsoup::ag {

/// Y += A · X for weighted CSR A, scheduled over pre-computed row ranges
/// of approximately equal nnz (binary search over indptr) so power-law
/// degree distributions do not serialise on the hub rows. Common feature
/// widths (8/16/32/64/128) run width-specialised dual-accumulator kernels.
/// Used by the spmm backward pass. X is [n, d], Y is [n, d].
void spmm_accumulate(const Csr& a, const Tensor& x, Tensor& y);

/// Y = A · X, same kernels but fused with the output initialisation (no
/// separate zero pass, Y written once per row). Forward-pass workhorse;
/// Y may be uninitialised storage.
void spmm_overwrite(const Csr& a, const Tensor& x, Tensor& y);

/// Y += A · X, the seed's naive row-parallel loop. Test oracle and bench
/// baseline for the kernels above.
void spmm_reference(const Csr& a, const Tensor& x, Tensor& y);

/// Y(0..num_rows) = A · X for a raw CSR given by spans (num_rows =
/// indptr.size() - 1; indices address rows of X, which may have more rows
/// than Y — the bipartite-block case). Same edge-balanced schedule and
/// width-specialised kernels as spmm_overwrite; `spmm_overwrite` itself is
/// this function applied to a Csr's members. Exposed so the serving
/// engine can run message passing over block-local CSRs that are not Csr
/// objects, with bitwise-identical numerics to the training forward.
void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const Tensor& x,
                          Tensor& y);

/// Y = A · X (and Y += A · X) over a cached graph::BlockedCsr layout: the
/// same width-specialised dual-accumulator kernels, but the edge-balanced
/// row blocks come pre-computed from the layout (no binary search per
/// launch) and the gather loop runs at the layout's column-index width
/// (16-bit on graphs under 2^16 nodes). Bit-identical results to
/// spmm_overwrite/spmm_accumulate over the CSR the layout was built from.
/// The layout must carry values (be an SpMM operand, not structure-only).
void spmm_blocked_overwrite(const graph::BlockedCsr& a, const Tensor& x,
                            Tensor& y);
void spmm_blocked_accumulate(const graph::BlockedCsr& a, const Tensor& x,
                             Tensor& y);

// Half-stored-X twins for the reduced-precision infer path. Each X
// element widens to fp32 in registers right before its FMA; accumulation
// order is identical to the float kernels, so the result is bit-equal to
// running the fp32 SpMM over a widened copy of X. Output is fp32.
void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const HalfBuffer& x,
                          Tensor& y);
void spmm_blocked_overwrite(const graph::BlockedCsr& a, const HalfBuffer& x,
                            Tensor& y);

/// Autograd-free multi-head GAT attention forward over a raw CSR
/// (num_dst = indptr.size() - 1; indices address rows of h_src /
/// score_src, dst i addresses row i of score_dst):
///   z_e      = score_dst[i, h] + score_src[src_e, h]
///   alpha_e  = softmax over in-edges of i of LeakyReLU(z_e)
///   out[i,·] = Σ_e alpha_e · h_src[src_e, ·]   (per head)
/// `alpha` is an [E, heads] workspace (overwritten with the normalised
/// attention coefficients; retained by the training path for backward,
/// scratch for serving); `out` is overwritten.
///
/// Head-fused: every edge is visited twice per row — one sweep computing
/// the LeakyReLU activations and per-head maxima for all heads at once,
/// one sweep exponentiating and accumulating the (unnormalised) weighted
/// aggregate with a d-width-specialised SIMD body — instead of the seed's
/// four per-head walks. Shared by ag::gat_attention and the serving
/// engine.
void gat_attention_forward(std::span<const std::int64_t> indptr,
                           std::span<const std::int32_t> indices,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out);

/// Plan-aware forward: the same head-fused kernels over a cached
/// structure layout (graph::build_blocked_csr of the raw adjacency) —
/// pre-computed edge-balanced row blocks instead of a binary search per
/// launch, and the gather runs at the layout's index width (16-bit under
/// 2^16 nodes). Bit-identical to the span overload above.
void gat_attention_forward(const graph::BlockedCsr& layout,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out);

/// Inference-only attention forward: identical output to
/// gat_attention_forward — bit for bit — with no caller-visible `alpha`
/// tensor. Same pass structure as the training kernel (activations and
/// exponentials staged in a reusable thread-local [E, heads] scratch —
/// fusing exp into the aggregate loop measured ~30% slower, see the
/// kernel body), except the final walk that rescales the stored p's into
/// normalised attention coefficients is skipped: inference never reads
/// alpha. The float operations feeding `out` are performed in exactly
/// the training kernel's order, which is what makes exec-mode infer
/// logits bit-identical to the tape forward (tests/test_exec.cpp).
/// Selected by infer-mode plan lowering (exec::Executor). Measured
/// honestly: 1.00-1.06x over gat_attention_forward single-thread at
/// d=16 (the skipped walk is a small traffic fraction next to the H·D
/// gathers); the concrete wins are the retired engine-side [E, heads]
/// workspace and the unchanged-output guarantee.
void gat_attention_infer(std::span<const std::int64_t> indptr,
                         std::span<const std::int32_t> indices,
                         const Tensor& h_src, const Tensor& score_dst,
                         const Tensor& score_src, std::int64_t heads,
                         float slope, Tensor& out);

/// Plan-aware infer forward over a cached structure layout (pre-computed
/// row blocks, narrow indices), bit-identical to the span overload.
void gat_attention_infer(const graph::BlockedCsr& layout,
                         const Tensor& h_src, const Tensor& score_dst,
                         const Tensor& score_src, std::int64_t heads,
                         float slope, Tensor& out);

/// The seed attention kernel (three softmax passes plus an aggregate walk
/// per (dst, head), serial in the head dimension), kept verbatim as the
/// parity oracle and the bench baseline the fused kernels are gated
/// against.
void gat_attention_forward_reference(std::span<const std::int64_t> indptr,
                                     std::span<const std::int32_t> indices,
                                     const Tensor& h_src,
                                     const Tensor& score_dst,
                                     const Tensor& score_src,
                                     std::int64_t heads, float slope,
                                     Tensor& alpha, Tensor& out);

/// Autograd-free GAT attention backward: given the forward's normalised
/// `alpha` and the output gradient, accumulate (+=) into any non-null
/// gradient tensors (dh is [n, heads*d], dscore_dst/dscore_src are
/// [n, heads]; all must be preallocated, typically Node::ensure_grad()).
/// Pass 1 walks destination rows head-fused (softmax + LeakyReLU
/// backward, stashing per-edge dz); pass 2 gathers dz/alpha·dOut by
/// *source* row over `graph_t`, race-free without the seed's per-head
/// serial walks. The [E, heads] dz scratch is a reusable thread-local
/// workspace — zero heap allocations once warm (one growth per thread).
void gat_attention_backward(std::span<const std::int64_t> indptr,
                            std::span<const std::int32_t> indices,
                            const CsrTranspose& graph_t, const Tensor& h_src,
                            const Tensor& score_dst, const Tensor& score_src,
                            const Tensor& alpha, const Tensor& grad_out,
                            std::int64_t heads, float slope, Tensor* dh,
                            Tensor* dscore_dst, Tensor* dscore_src);

/// Plan-aware backward: pass 1 over the cached structure layout, pass 2
/// over the cached transpose layout (graph::build_blocked_transpose),
/// whose 16-bit indices, 32-bit edge positions and pre-computed row
/// blocks replace the CsrTranspose's int64 edge_map and the per-call
/// chunking pass.
void gat_attention_backward(const graph::BlockedCsr& layout,
                            const graph::BlockedCsr& layout_t,
                            const Tensor& h_src, const Tensor& score_dst,
                            const Tensor& score_src, const Tensor& alpha,
                            const Tensor& grad_out, std::int64_t heads,
                            float slope, Tensor* dh, Tensor* dscore_dst,
                            Tensor* dscore_src);

/// The seed backward (per-(dst, head) serial walks, fresh [E, heads] dz
/// allocation per call), kept as the gradient oracle and bench baseline.
void gat_attention_backward_reference(
    std::span<const std::int64_t> indptr,
    std::span<const std::int32_t> indices, const CsrTranspose& graph_t,
    const Tensor& h_src, const Tensor& score_dst, const Tensor& score_src,
    const Tensor& alpha, const Tensor& grad_out, std::int64_t heads,
    float slope, Tensor* dh, Tensor* dscore_dst, Tensor* dscore_src);

/// Y = A · X where A is a weighted CSR (in-edge convention: row i of A
/// holds weights of edges (j -> i)). `a_transpose` must be the weighted
/// transpose of `a`; both must carry values.
Value spmm(const Csr& a, const Csr& a_transpose, const Value& x);

/// spmm with optional cached layouts (see GraphContext::spmm_layout()):
/// the forward runs over `layout` and the backward over `layout_t` when
/// non-null, falling back to the CSRs otherwise. The layouts must have
/// been built from `a` / `a_transpose` respectively.
Value spmm(const Csr& a, const Csr& a_transpose, const Value& x,
           const graph::BlockedCsr* layout,
           const graph::BlockedCsr* layout_t);

/// Multi-head GAT aggregation (Veličković et al.):
///   z_e      = score_dst[dst_e, h] + score_src[src_e, h]
///   alpha_e  = softmax over in-edges of dst_e of LeakyReLU(z_e)
///   out[i,h] = Σ_{e: dst_e = i} alpha_e · h_src[src_e, h]
///
/// `h` is [n, heads*dim]; `score_dst`/`score_src` are [n, heads] (the aᵀWh
/// dot products, computed by matmul so their parameter grads come for
/// free). `graph` is the unweighted structure (with self loops);
/// `graph_t` its transpose with edge-id mapping, used by the backward
/// scatter to sources. Saves the attention coefficients (E × heads) for
/// the backward pass — the memory signature that makes learned souping
/// with GAT the most memory-hungry configuration in the paper (Fig. 4b).
Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope);

/// gat_attention with optional cached layouts (see
/// GraphContext::attn_layout()/attn_layout_t()): the forward gathers over
/// `layout` and the backward over both when non-null, falling back to the
/// CSR/CsrTranspose otherwise. Must be built from `graph`/its transpose.
/// Which layouts to pass is a plan-compile decision (exec::LayerStep):
/// single-head backwards keep the span kernels — the narrow-index
/// instantiation anomaly documented in docs/BENCHMARKS.md — so callers
/// pass layout_t = nullptr for heads == 1.
Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope,
                    const graph::BlockedCsr* layout,
                    const graph::BlockedCsr* layout_t);

/// Bipartite-block SpMM for minibatch training: Y[i] = Σ_e w_e X[src_e]
/// over a sampled Block. X rows are block-local (size block.num_src()).
/// The backward dX = Bᵀ·dY runs as a race-free edge-balanced SpMM gather
/// over the block's cached graph::BlockedCsr transpose instead of the
/// seed's every-thread-walks-every-edge scatter. Blocks sampled with
/// BlockTranspose::kBuild already carry that transpose (built, threaded,
/// at sample time); otherwise the forward builds it here once when
/// gradients are being recorded.
Value block_spmm(const Block& block, const Value& x);

/// The seed block_spmm backward (each thread walks all E edges, writing
/// only the source rows in its range; team clamped to ~d threads), kept
/// as the parity oracle and bench baseline for the transpose-gather
/// backward. Accumulates dX += Bᵀ·dY into `x_grad` ([num_src, d]).
void block_spmm_backward_scatter(const Block& block, const Tensor& grad_out,
                                 Tensor& x_grad);

/// Narrow a block-local matrix to its first `rows` rows (the destination
/// nodes of a block). Gradient scatters back into the leading rows.
Value narrow_rows(const Value& x, std::int64_t rows);

/// Gather rows of a constant feature matrix by global index (minibatch
/// input construction; non-differentiable w.r.t. indices, and `features`
/// is expected to be a constant).
Value gather_rows(const Value& features,
                  std::span<const std::int64_t> row_ids);

}  // namespace gsoup::ag
