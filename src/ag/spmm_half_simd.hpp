// AVX2/F16C row kernels for SpMM over half-stored X, runtime-dispatched.
//
// The scalar half codec is ~10 integer/FP ops per element; inlined into
// the SpMM gather loops it turns a bandwidth-bound kernel into a
// conversion-bound one (measured ~10x slower than the fp32 kernel).
// The hardware converters do the same job in one instruction, so this TU
// carries the half-X row kernels built with AVX2+F16C enabled — in
// portable builds CMake compiles just this file with `-mavx2 -mf16c`,
// and callers gate on `available()` (a cached CPUID check), so the
// binary still runs everywhere.
//
// Numerics contract (the same one the scalar path keeps): conversion is
// vcvtph2ps, bit-exact to the scalar fp16 codec (asserted exhaustively
// in tests/test_half.cpp), bf16 widening is an integer shift; the fp32
// accumulation mirrors the scalar kernels' per-element order exactly,
// including the dual-accumulator schedule, the short-row accumulate fast
// path, and the build's mul+add-vs-FMA contraction (`__FMA__` both here
// and in the autovectorized fp32 loops). Half-X results therefore stay
// bit-equal to running the fp32 kernel over a widened copy of X,
// whichever path dispatch picks.
#pragma once

#include <cstdint>

#include "tensor/half.hpp"

namespace gsoup::ag::halfsimd {

/// True when this binary was built with the AVX2+F16C kernels AND the
/// CPU executing it has both features. Checked once.
bool available();

/// Row-range SpMM body over half-stored X, mirroring the scalar
/// spmm_rows<> dispatch: y[lo:hi] (?)= A[lo:hi] · widen(X). `overwrite`
/// selects overwrite-vs-accumulate exactly like the Overwrite template
/// flag; `num_edges` bounds the prefetch lookahead. Call only when
/// available() is true.
void spmm_rows_half(const std::int64_t* indptr, const std::int32_t* indices,
                    const float* values, const std::uint16_t* px, float* py,
                    std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                    std::int64_t hi, Precision prec, bool overwrite);

/// Same body at the cached BlockedCsr layouts' narrow (16-bit) index
/// width.
void spmm_rows_half(const std::int64_t* indptr, const std::uint16_t* indices,
                    const float* values, const std::uint16_t* px, float* py,
                    std::int64_t d, std::int64_t num_edges, std::int64_t lo,
                    std::int64_t hi, Precision prec, bool overwrite);

}  // namespace gsoup::ag::halfsimd
