#include "ag/graph_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ag/spmm_half_simd.hpp"
#include "graph/locality.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace gsoup::ag {

namespace {

// SpMM kernel bodies. Two levers over the naive per-edge loop, each worth
// measuring (see BENCH_kernels.json):
//   1. Compile-time feature width D: the naive runtime trip count costs a
//      vectoriser prologue/epilogue on every edge; common GNN widths get a
//      dedicated instantiation.
//   2. Dual accumulators: `y[j] += w*x[j]` per edge is a serial FMA chain
//      through the row (4-5 cycle latency each). Interleaving even/odd
//      edges into two register accumulators halves the chain, and the row
//      is stored once at the end instead of updated per edge.
// X rows a few edges ahead are software-prefetched to overlap gather
// latency. Overwrite=true stores `y = acc` (fused Y = A·X, skips the
// separate zero pass and Y re-read); false adds into existing Y (backward
// accumulation).

constexpr std::int64_t kSpmmPrefetchDist = 12;

/// Touch every cache line of a D-element row. Templated on the element
/// type so half-stored X rows (2-byte elements, 32 per line) issue half
/// the prefetches of fp32 rows — for float this expands to exactly the
/// original +0/+16/+32/+48/+64/+96 pattern.
template <int D, typename T = float>
inline void spmm_prefetch_row(const T* p) {
  constexpr int kPerLine = static_cast<int>(64 / sizeof(T));
  __builtin_prefetch(p, 0, 3);
  if constexpr (D > kPerLine) __builtin_prefetch(p + kPerLine, 0, 3);
  if constexpr (D > 2 * kPerLine) {
    __builtin_prefetch(p + 2 * kPerLine, 0, 3);
    __builtin_prefetch(p + 3 * kPerLine, 0, 3);
  }
  if constexpr (D > 4 * kPerLine) {
    __builtin_prefetch(p + 4 * kPerLine, 0, 3);
    __builtin_prefetch(p + 6 * kPerLine, 0, 3);
  }
}

/// Identity widen for the fp32 X path: the templated kernels below inline
/// this away, leaving the original float loads.
inline float spmm_widen_f32(float v) { return v; }

// The kernel bodies are additionally templated on the column-index type
// Idx: int32 for raw CSR spans, uint16 for cached graph::BlockedCsr
// layouts on graphs whose source-id domain fits 16 bits (half the index
// traffic per edge). The float operations are identical for every Idx, so
// layout and span paths agree bit-for-bit.
//
// They are also templated on the X element type TX with a per-element
// WidenX: float X uses the identity (compiled away), half-stored X widens
// each element to fp32 in registers right before the FMA. Accumulation
// stays fp32 in the exact same order, so half-X results are bit-equal to
// running the float kernel over a widened copy of X. On half X the
// dispatch drivers below first try the AVX2/F16C kernels in
// spmm_half_simd.cpp (hardware converters, same accumulation order and
// contraction — see that header for the bit-exactness argument); these
// scalar-codec instantiations are the fallback for CPUs without F16C.
template <int D, bool Overwrite, typename Idx, typename TX,
          float (*WidenX)(TX)>
void spmm_rows_fixed(const std::int64_t* __restrict__ indptr,
                     const Idx* __restrict__ indices,
                     const float* __restrict__ values,
                     const TX* __restrict__ px, float* __restrict__ py,
                     std::int64_t num_edges, std::int64_t lo,
                     std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    float* __restrict__ yrow = py + i * D;
    if constexpr (!Overwrite) {
      // Short-row fast path for accumulation: backward gathers over
      // block/graph transposes average only a handful of edges per row,
      // where the dual-accumulator setup/merge costs more than the
      // latency chain it hides. A single register accumulator seeded
      // from yrow and stored once is cheaper.
      if (end - begin <= 4) {
        float acc[D];
#pragma omp simd
        for (int j = 0; j < D; ++j) acc[j] = yrow[j];
        for (std::int64_t e = begin; e < end; ++e) {
          if (e + kSpmmPrefetchDist < num_edges) {
            spmm_prefetch_row<D>(
                px +
                static_cast<std::int64_t>(indices[e + kSpmmPrefetchDist]) *
                    D);
          }
          const float w = values[e];
          const TX* __restrict__ xrow =
              px + static_cast<std::int64_t>(indices[e]) * D;
#pragma omp simd
          for (int j = 0; j < D; ++j) acc[j] += w * WidenX(xrow[j]);
        }
#pragma omp simd
        for (int j = 0; j < D; ++j) yrow[j] = acc[j];
        continue;
      }
    }
    float acc0[D], acc1[D] = {};
    if constexpr (Overwrite) {
#pragma omp simd
      for (int j = 0; j < D; ++j) acc0[j] = 0.0f;
    } else {
      // Fold the existing row into the even accumulator: one array pass
      // instead of a zero pass plus a read-modify-write epilogue.
#pragma omp simd
      for (int j = 0; j < D; ++j) acc0[j] = yrow[j];
    }
    std::int64_t e = begin;
    for (; e + 1 < end; e += 2) {
      if (e + kSpmmPrefetchDist + 1 < num_edges) {
        spmm_prefetch_row<D>(
            px + static_cast<std::int64_t>(indices[e + kSpmmPrefetchDist]) *
                     D);
        spmm_prefetch_row<D>(
            px +
            static_cast<std::int64_t>(indices[e + kSpmmPrefetchDist + 1]) *
                D);
      }
      const float w0 = values[e], w1 = values[e + 1];
      const TX* __restrict__ x0 =
          px + static_cast<std::int64_t>(indices[e]) * D;
      const TX* __restrict__ x1 =
          px + static_cast<std::int64_t>(indices[e + 1]) * D;
#pragma omp simd
      for (int j = 0; j < D; ++j) {
        acc0[j] += w0 * WidenX(x0[j]);
        acc1[j] += w1 * WidenX(x1[j]);
      }
    }
    if (e < end) {
      const float w = values[e];
      const TX* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * D;
#pragma omp simd
      for (int j = 0; j < D; ++j) acc0[j] += w * WidenX(xrow[j]);
    }
#pragma omp simd
    for (int j = 0; j < D; ++j) yrow[j] = acc0[j] + acc1[j];
  }
}

/// Fallback for feature widths without a fixed instantiation.
template <bool Overwrite, typename Idx, typename TX, float (*WidenX)(TX)>
void spmm_rows_generic(const std::int64_t* __restrict__ indptr,
                       const Idx* __restrict__ indices,
                       const float* __restrict__ values,
                       const TX* __restrict__ px, float* __restrict__ py,
                       std::int64_t d, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    float* __restrict__ yrow = py + i * d;
    if constexpr (Overwrite) {
#pragma omp simd
      for (std::int64_t j = 0; j < d; ++j) yrow[j] = 0.0f;
    }
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float w = values[e];
      const TX* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * d;
#pragma omp simd
      for (std::int64_t j = 0; j < d; ++j) yrow[j] += w * WidenX(xrow[j]);
    }
  }
}

template <bool Overwrite, typename Idx, typename TX, float (*WidenX)(TX)>
void spmm_rows(const std::int64_t* __restrict__ indptr,
               const Idx* __restrict__ indices,
               const float* __restrict__ values,
               const TX* __restrict__ px, float* __restrict__ py,
               std::int64_t d, std::int64_t num_edges, std::int64_t lo,
               std::int64_t hi) {
  switch (d) {
    case 8:
      spmm_rows_fixed<8, Overwrite, Idx, TX, WidenX>(
          indptr, indices, values, px, py, num_edges, lo, hi);
      return;
    case 16:
      spmm_rows_fixed<16, Overwrite, Idx, TX, WidenX>(
          indptr, indices, values, px, py, num_edges, lo, hi);
      return;
    case 32:
      spmm_rows_fixed<32, Overwrite, Idx, TX, WidenX>(
          indptr, indices, values, px, py, num_edges, lo, hi);
      return;
    case 64:
      spmm_rows_fixed<64, Overwrite, Idx, TX, WidenX>(
          indptr, indices, values, px, py, num_edges, lo, hi);
      return;
    case 128:
      spmm_rows_fixed<128, Overwrite, Idx, TX, WidenX>(
          indptr, indices, values, px, py, num_edges, lo, hi);
      return;
    default:
      spmm_rows_generic<Overwrite, Idx, TX, WidenX>(indptr, indices, values,
                                                    px, py, d, lo, hi);
  }
}

/// Shared driver: edge-balanced chunks over rows, then the width-dispatched
/// body per chunk. Spans rather than a Csr so bipartite block-local
/// structures (serving engine, minibatch blocks) run the same code path.
template <bool Overwrite, typename TX, float (*WidenX)(TX)>
void spmm_dispatch_t(std::span<const std::int64_t> sp_indptr,
                     std::span<const std::int32_t> sp_indices,
                     std::span<const float> sp_values,
                     const TX* __restrict__ px, std::int64_t d, Tensor& y,
                     Precision prec) {
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = sp_indptr.data();
  const auto* __restrict__ indices = sp_indices.data();
  const auto* __restrict__ values = sp_values.data();
  const auto e = static_cast<std::int64_t>(sp_indices.size());
  // Edge-balanced schedule: contiguous row ranges of ~equal nnz, a few per
  // thread, so hub rows of power-law graphs spread across the team without
  // per-row dynamic-scheduling overhead.
  for_each_balanced_row(sp_indptr, [&](std::int64_t lo, std::int64_t hi) {
    if constexpr (std::is_same_v<TX, std::uint16_t>) {
      if (halfsimd::available()) {
        halfsimd::spmm_rows_half(indptr, indices, values, px, py, d, e, lo,
                                 hi, prec, Overwrite);
        return;
      }
    }
    spmm_rows<Overwrite, std::int32_t, TX, WidenX>(indptr, indices, values,
                                                   px, py, d, e, lo, hi);
  });
}

template <bool Overwrite>
void spmm_dispatch(std::span<const std::int64_t> sp_indptr,
                   std::span<const std::int32_t> sp_indices,
                   std::span<const float> sp_values, const Tensor& x,
                   Tensor& y) {
  spmm_dispatch_t<Overwrite, float, spmm_widen_f32>(
      sp_indptr, sp_indices, sp_values, x.data(), x.shape(1), y,
      Precision::kFp32);
}

/// Driver for cached graph::BlockedCsr layouts: the edge-balanced row
/// blocks were pre-computed at layout build time (no binary search per
/// launch) and the gather loop runs at the layout's index width.
template <bool Overwrite, typename TX, float (*WidenX)(TX)>
void spmm_blocked_dispatch_t(const graph::BlockedCsr& a,
                             const TX* __restrict__ px, std::int64_t d,
                             Tensor& y, Precision prec) {
  GSOUP_CHECK_MSG(a.weighted() || a.num_edges() == 0,
                  "blocked spmm needs a weighted layout (SpMM operand), "
                  "not a structure-only attention layout");
  const std::int64_t e = a.num_edges();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = a.indptr.data();
  const auto* __restrict__ values = a.values.data();
  const auto run = [&](const auto* indices) {
    using Idx = std::remove_cvref_t<decltype(indices[0])>;
    for_each_row_block(a.row_blocks, a.num_rows,
                       [&](std::int64_t lo, std::int64_t hi) {
                         if constexpr (std::is_same_v<TX, std::uint16_t>) {
                           if (halfsimd::available()) {
                             halfsimd::spmm_rows_half(indptr, indices, values,
                                                      px, py, d, e, lo, hi,
                                                      prec, Overwrite);
                             return;
                           }
                         }
                         spmm_rows<Overwrite, Idx, TX, WidenX>(
                             indptr, indices, values, px, py, d, e, lo, hi);
                       });
  };
  if (a.narrow()) {
    run(a.idx16.data());
  } else {
    run(a.idx32.data());
  }
}

template <bool Overwrite>
void spmm_blocked_dispatch(const graph::BlockedCsr& a, const Tensor& x,
                           Tensor& y) {
  GSOUP_CHECK_MSG(x.rank() == 2 && y.rank() == 2 &&
                      y.shape(0) == a.num_rows && y.shape(1) == x.shape(1),
                  "blocked spmm: bad shapes " << x.shape_str() << " -> "
                                              << y.shape_str());
  spmm_blocked_dispatch_t<Overwrite, float, spmm_widen_f32>(
      a, x.data(), x.shape(1), y, Precision::kFp32);
}

// ---- GAT attention kernels ------------------------------------------------
//
// The seed kernel walked every destination row four times *per head*
// (activation+max, exp+sum, normalise, aggregate), with the aggregate's
// inner loop at a runtime trip count. The fused kernels process all heads
// of an edge in one sweep — the [E, heads] alpha layout makes the per-edge
// head lane contiguous — and visit each row's edges twice:
//   pass 1: z = sl+sr, LeakyReLU, per-head running max        (stores act)
//   pass 2: p = exp(act-max), denom += p, acc += p·H[src]     (stores p)
// followed by two short epilogues: scale the accumulated row by 1/denom
// (the softmax normalisation commuted past the aggregation) and scale the
// stored p's into normalised attention coefficients for the backward.
// This keeps the exp count at one per edge-lane — libm expf is the most
// expensive instruction here, so the usual online-softmax rescale (which
// re-exponentiates in the second pass) loses more than the saved
// max-walk gains. The aggregate inner loop is
// width-specialised on the per-head dim d like spmm_rows.
//
// Per-row softmax state lives in fixed stack arrays of kGatHeadTile
// lanes; rows with more heads than that run multiple tiles (each tile
// re-walks the row, degrading gracefully toward the seed's per-head cost
// — 16 covers every configuration in the paper with one tile).

constexpr std::int64_t kGatHeadTile = 16;
constexpr std::int64_t kGatPrefetchDist = 8;


/// Specialised forward row body: D (per-head dim) and H (head count) are
/// compile-time, so every inner loop fully unrolls, hd = H·D addressing
/// folds into constants, and the unnormalised aggregate lives in an
/// H·D-float register/stack accumulator written to the output row once.
/// Measured against the runtime-heads fallback below, this is where most
/// of the fused kernel's speedup comes from: the per-edge head loops are
/// 1-8 iterations, far too short to amortise runtime trip counts.
template <int D, int H, typename Idx>
void gat_forward_rows(const std::int64_t* __restrict__ indptr,
                      const Idx* __restrict__ indices,
                      const float* __restrict__ sl,
                      const float* __restrict__ sr,
                      const float* __restrict__ ph, float* __restrict__ pa,
                      float* __restrict__ po, float slope, std::int64_t lo,
                      std::int64_t hi) {
  constexpr std::int64_t HD = static_cast<std::int64_t>(H) * D;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ sli = sl + i * H;
    float* __restrict__ orow = po + i * HD;
    float mx[H];
    float denom[H] = {};
    for (int h = 0; h < H; ++h) {
      mx[h] = -std::numeric_limits<float>::infinity();
    }
    // Pass 1: LeakyReLU activations + per-head maxima, all lanes per edge.
    for (std::int64_t e = begin; e < end; ++e) {
      const float* __restrict__ srj =
          sr + static_cast<std::int64_t>(indices[e]) * H;
      float* __restrict__ ae = pa + e * H;
      for (int h = 0; h < H; ++h) {
        const float z = sli[h] + srj[h];
        // LeakyReLU(z) == max(z, slope*z) for 0 < slope < 1: branchless,
        // where the data-dependent select mispredicts half the time.
        const float act = std::max(z, slope * z);
        ae[h] = act;
        mx[h] = std::max(mx[h], act);
      }
    }
    // Pass 2a: exponentiate the row's alpha block in one stream,
    // accumulating the per-head denominators.
    for (std::int64_t e = begin; e < end; ++e) {
      float* __restrict__ ae = pa + e * H;
#pragma omp simd
      for (int h = 0; h < H; ++h) {
        const float p = std::exp(ae[h] - mx[h]);
        ae[h] = p;
        denom[h] += p;
      }
    }
    // Pass 2b: unnormalised aggregate acc += p·H[src] over the full H·D
    // row (contiguous gather, unlike the seed's per-head segments).
    float acc[HD] = {};
    for (std::int64_t e = begin; e < end; ++e) {
      if (e + kGatPrefetchDist < end) {
        spmm_prefetch_row<HD>(
            ph +
            static_cast<std::int64_t>(indices[e + kGatPrefetchDist]) * HD);
      }
      const float* __restrict__ ae = pa + e * H;
      const float* __restrict__ hrow =
          ph + static_cast<std::int64_t>(indices[e]) * HD;
      for (int h = 0; h < H; ++h) {
        const float p = ae[h];
#pragma omp simd
        for (int j = 0; j < D; ++j) acc[h * D + j] += p * hrow[h * D + j];
      }
    }
    // Normalise: the accumulated row once (the softmax normalisation
    // commuted past the aggregation), then the stored p's into attention
    // coefficients for the backward.
    float inv[H];
    for (int h = 0; h < H; ++h) {
      inv[h] = denom[h] > 0.0f ? 1.0f / denom[h] : 0.0f;
    }
    for (int h = 0; h < H; ++h) {
#pragma omp simd
      for (int j = 0; j < D; ++j) orow[h * D + j] = acc[h * D + j] * inv[h];
    }
    for (std::int64_t e = begin; e < end; ++e) {
      float* __restrict__ ae = pa + e * H;
      for (int h = 0; h < H; ++h) ae[h] *= inv[h];
    }
  }
}

/// Runtime-shape fallback (uncommon head counts or per-head dims): same
/// pass structure, head-tiled so per-row softmax state stays in fixed
/// stack arrays, aggregate accumulated in the output row directly.
template <typename Idx>
void gat_forward_rows_generic(const std::int64_t* __restrict__ indptr,
                              const Idx* __restrict__ indices,
                              const float* __restrict__ sl,
                              const float* __restrict__ sr,
                              const float* __restrict__ ph,
                              float* __restrict__ pa, float* __restrict__ po,
                              std::int64_t heads, std::int64_t d, float slope,
                              std::int64_t lo, std::int64_t hi) {
  const std::int64_t hd = heads * d;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ sli = sl + i * heads;
    float* __restrict__ orow = po + i * hd;
#pragma omp simd
    for (std::int64_t j = 0; j < hd; ++j) orow[j] = 0.0f;
    for (std::int64_t hb = 0; hb < heads; hb += kGatHeadTile) {
      const std::int64_t hw = std::min(kGatHeadTile, heads - hb);
      float mx[kGatHeadTile];
      float denom[kGatHeadTile] = {};
      for (std::int64_t h = 0; h < hw; ++h) {
        mx[h] = -std::numeric_limits<float>::infinity();
      }
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ srj =
            sr + static_cast<std::int64_t>(indices[e]) * heads + hb;
        float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float z = sli[hb + h] + srj[h];
          const float act = std::max(z, slope * z);  // branchless LeakyReLU
          ae[h] = act;
          mx[h] = std::max(mx[h], act);
        }
      }
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ hrow =
            ph + static_cast<std::int64_t>(indices[e]) * hd + hb * d;
        float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float p = std::exp(ae[h] - mx[h]);
          ae[h] = p;
          denom[h] += p;
          const float* __restrict__ hseg = hrow + h * d;
          float* __restrict__ oseg = orow + (hb + h) * d;
#pragma omp simd
          for (std::int64_t j = 0; j < d; ++j) oseg[j] += p * hseg[j];
        }
      }
      float inv[kGatHeadTile];
      for (std::int64_t h = 0; h < hw; ++h) {
        inv[h] = denom[h] > 0.0f ? 1.0f / denom[h] : 0.0f;
      }
      for (std::int64_t h = 0; h < hw; ++h) {
        float* __restrict__ oseg = orow + (hb + h) * d;
        const float s = inv[h];
#pragma omp simd
        for (std::int64_t j = 0; j < d; ++j) oseg[j] *= s;
      }
      for (std::int64_t e = begin; e < end; ++e) {
        float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) ae[h] *= inv[h];
      }
    }
  }
}

/// Inference-only forward row body (compile-time D and H): the exact
/// pass structure of gat_forward_rows — same walks, same float-operation
/// order per output element, hence bit-identical results — but the
/// per-edge activations/exponentials live in a reusable thread-local
/// scratch (`pa`) instead of a caller-retained alpha tensor, and the
/// final walk that rescales the stored p's into normalised attention
/// coefficients is gone: inference never reads alpha, so that E x heads
/// read-modify-write pass (and the engine-side [E, heads] workspace) is
/// pure overhead. Keeping the exp pass separate from the aggregate pass
/// is deliberate: fusing them interleaves a libm call into the SIMD
/// accumulate loop and spills the H·D-float accumulator every edge
/// (measured ~30% slower than the fused training kernel).
template <int D, int H, typename Idx>
void gat_infer_rows(const std::int64_t* __restrict__ indptr,
                    const Idx* __restrict__ indices,
                    const float* __restrict__ sl,
                    const float* __restrict__ sr,
                    const float* __restrict__ ph, float* __restrict__ pa,
                    float* __restrict__ po, float slope, std::int64_t lo,
                    std::int64_t hi) {
  constexpr std::int64_t HD = static_cast<std::int64_t>(H) * D;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ sli = sl + i * H;
    float* __restrict__ orow = po + i * HD;
    float mx[H];
    float denom[H] = {};
    for (int h = 0; h < H; ++h) {
      mx[h] = -std::numeric_limits<float>::infinity();
    }
    // Pass 1: LeakyReLU activations + per-head maxima (scratch store).
    for (std::int64_t e = begin; e < end; ++e) {
      const float* __restrict__ srj =
          sr + static_cast<std::int64_t>(indices[e]) * H;
      float* __restrict__ ae = pa + e * H;
      for (int h = 0; h < H; ++h) {
        const float z = sli[h] + srj[h];
        const float act = std::max(z, slope * z);
        ae[h] = act;
        mx[h] = std::max(mx[h], act);
      }
    }
    // Pass 2a: exponentiate, accumulating the per-head denominators.
    for (std::int64_t e = begin; e < end; ++e) {
      float* __restrict__ ae = pa + e * H;
#pragma omp simd
      for (int h = 0; h < H; ++h) {
        const float p = std::exp(ae[h] - mx[h]);
        ae[h] = p;
        denom[h] += p;
      }
    }
    // Pass 2b: unnormalised aggregate, then normalise the output row.
    // (The training kernel additionally rescales every stored p — the
    // walk this kernel exists to skip.)
    float acc[HD] = {};
    for (std::int64_t e = begin; e < end; ++e) {
      if (e + kGatPrefetchDist < end) {
        spmm_prefetch_row<HD>(
            ph +
            static_cast<std::int64_t>(indices[e + kGatPrefetchDist]) * HD);
      }
      const float* __restrict__ ae = pa + e * H;
      const float* __restrict__ hrow =
          ph + static_cast<std::int64_t>(indices[e]) * HD;
      for (int h = 0; h < H; ++h) {
        const float p = ae[h];
#pragma omp simd
        for (int j = 0; j < D; ++j) acc[h * D + j] += p * hrow[h * D + j];
      }
    }
    for (int h = 0; h < H; ++h) {
      const float inv = denom[h] > 0.0f ? 1.0f / denom[h] : 0.0f;
#pragma omp simd
      for (int j = 0; j < D; ++j) orow[h * D + j] = acc[h * D + j] * inv;
    }
  }
}

/// Runtime-shape infer fallback, head-tiled like the training generic;
/// same structure minus the alpha-normalisation walk.
template <typename Idx>
void gat_infer_rows_generic(const std::int64_t* __restrict__ indptr,
                            const Idx* __restrict__ indices,
                            const float* __restrict__ sl,
                            const float* __restrict__ sr,
                            const float* __restrict__ ph,
                            float* __restrict__ pa, float* __restrict__ po,
                            std::int64_t heads, std::int64_t d, float slope,
                            std::int64_t lo, std::int64_t hi) {
  const std::int64_t hd = heads * d;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ sli = sl + i * heads;
    float* __restrict__ orow = po + i * hd;
#pragma omp simd
    for (std::int64_t j = 0; j < hd; ++j) orow[j] = 0.0f;
    for (std::int64_t hb = 0; hb < heads; hb += kGatHeadTile) {
      const std::int64_t hw = std::min(kGatHeadTile, heads - hb);
      float mx[kGatHeadTile];
      float denom[kGatHeadTile] = {};
      for (std::int64_t h = 0; h < hw; ++h) {
        mx[h] = -std::numeric_limits<float>::infinity();
      }
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ srj =
            sr + static_cast<std::int64_t>(indices[e]) * heads + hb;
        float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float z = sli[hb + h] + srj[h];
          const float act = std::max(z, slope * z);
          ae[h] = act;
          mx[h] = std::max(mx[h], act);
        }
      }
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ hrow =
            ph + static_cast<std::int64_t>(indices[e]) * hd + hb * d;
        float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float p = std::exp(ae[h] - mx[h]);
          ae[h] = p;
          denom[h] += p;
          const float* __restrict__ hseg = hrow + h * d;
          float* __restrict__ oseg = orow + (hb + h) * d;
#pragma omp simd
          for (std::int64_t j = 0; j < d; ++j) oseg[j] += p * hseg[j];
        }
      }
      for (std::int64_t h = 0; h < hw; ++h) {
        float* __restrict__ oseg = orow + (hb + h) * d;
        const float s = denom[h] > 0.0f ? 1.0f / denom[h] : 0.0f;
#pragma omp simd
        for (std::int64_t j = 0; j < d; ++j) oseg[j] *= s;
      }
    }
  }
}

/// Backward pass 1, head-fused: over destination rows of the forward
/// structure. Stashes per-edge dz (the gradient of the pre-activation
/// attention logit) in `pdz` and accumulates dscore_dst when `pslg` is
/// non-null.
/// Specialised backward pass-1 row body (compile-time D and H, like the
/// forward).
template <int D, int H, typename Idx>
void gat_backward_dst_rows(const std::int64_t* __restrict__ indptr,
                           const Idx* __restrict__ indices,
                           const float* __restrict__ grad_out,
                           const float* __restrict__ pa,
                           const float* __restrict__ ph,
                           const float* __restrict__ sl,
                           const float* __restrict__ sr,
                           float* __restrict__ pdz, float* __restrict__ pslg,
                           float slope, std::int64_t lo, std::int64_t hi) {
  constexpr std::int64_t HD = static_cast<std::int64_t>(H) * D;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ grow = grad_out + i * HD;
    const float* __restrict__ sli = sl + i * H;
    float inner[H] = {};
    // Walk 1: d_alpha_e = <dOut_i, H_src> per lane; inner = Σ alpha·d_alpha.
    for (std::int64_t e = begin; e < end; ++e) {
      if (e + kGatPrefetchDist < end) {
        spmm_prefetch_row<HD>(
            ph +
            static_cast<std::int64_t>(indices[e + kGatPrefetchDist]) * HD);
      }
      const float* __restrict__ hrow =
          ph + static_cast<std::int64_t>(indices[e]) * HD;
      float* __restrict__ dze = pdz + e * H;
      const float* __restrict__ ae = pa + e * H;
      for (int h = 0; h < H; ++h) {
        float dot = 0.0f;
#pragma omp simd reduction(+ : dot)
        for (int j = 0; j < D; ++j) dot += grow[h * D + j] * hrow[h * D + j];
        dze[h] = dot;
        inner[h] += ae[h] * dot;
      }
    }
    // Walk 2: softmax + LeakyReLU backward, all lanes per edge.
    float dsl_acc[H] = {};
    for (std::int64_t e = begin; e < end; ++e) {
      const float* __restrict__ srj =
          sr + static_cast<std::int64_t>(indices[e]) * H;
      float* __restrict__ dze = pdz + e * H;
      const float* __restrict__ ae = pa + e * H;
      for (int h = 0; h < H; ++h) {
        const float de = ae[h] * (dze[h] - inner[h]);
        const float z = sli[h] + srj[h];
        // Branchless LeakyReLU derivative: gate is a 0/1 float (compare +
        // mask), so no data-dependent branch on the sign of z.
        const float gate = static_cast<float>(z > 0.0f);
        const float dzv = de * (slope + (1.0f - slope) * gate);
        dze[h] = dzv;
        dsl_acc[h] += dzv;
      }
    }
    if (pslg != nullptr) {
      for (int h = 0; h < H; ++h) pslg[i * H + h] += dsl_acc[h];
    }
  }
}

/// Runtime-shape fallback for backward pass 1, head-tiled.
template <typename Idx>
void gat_backward_dst_rows_generic(
    const std::int64_t* __restrict__ indptr, const Idx* __restrict__ indices,
    const float* __restrict__ grad_out, const float* __restrict__ pa,
    const float* __restrict__ ph, const float* __restrict__ sl,
    const float* __restrict__ sr, float* __restrict__ pdz,
    float* __restrict__ pslg, std::int64_t heads, std::int64_t d, float slope,
    std::int64_t lo, std::int64_t hi) {
  const std::int64_t hd = heads * d;
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    const float* __restrict__ grow = grad_out + i * hd;
    const float* __restrict__ sli = sl + i * heads;
    for (std::int64_t hb = 0; hb < heads; hb += kGatHeadTile) {
      const std::int64_t hw = std::min(kGatHeadTile, heads - hb);
      float inner[kGatHeadTile] = {};
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ hrow =
            ph + static_cast<std::int64_t>(indices[e]) * hd + hb * d;
        float* __restrict__ dze = pdz + e * heads + hb;
        const float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float* __restrict__ hseg = hrow + h * d;
          const float* __restrict__ gseg = grow + (hb + h) * d;
          float dot = 0.0f;
#pragma omp simd reduction(+ : dot)
          for (std::int64_t j = 0; j < d; ++j) dot += gseg[j] * hseg[j];
          dze[h] = dot;
          inner[h] += ae[h] * dot;
        }
      }
      float dsl_acc[kGatHeadTile] = {};
      for (std::int64_t e = begin; e < end; ++e) {
        const float* __restrict__ srj =
            sr + static_cast<std::int64_t>(indices[e]) * heads + hb;
        float* __restrict__ dze = pdz + e * heads + hb;
        const float* __restrict__ ae = pa + e * heads + hb;
        for (std::int64_t h = 0; h < hw; ++h) {
          const float de = ae[h] * (dze[h] - inner[h]);
          const float z = sli[hb + h] + srj[h];
          const float dzv = de * (z > 0.0f ? 1.0f : slope);
          dze[h] = dzv;
          dsl_acc[h] += dzv;
        }
      }
      if (pslg != nullptr) {
        for (std::int64_t h = 0; h < hw; ++h) {
          pslg[i * heads + hb + h] += dsl_acc[h];
        }
      }
    }
  }
}

/// Backward pass 2, head-fused: over *source* rows of the transpose.
/// Gathers the stashed dz into dscore_src and alpha·dOut into dH —
/// race-free because each iteration owns one source row. `t_indices`
/// holds the destination of each transposed edge, `epos` its position in
/// the forward CSR (where alpha/dz live).
/// Specialised backward pass-2 row body (compile-time D and H).
template <int D, int H, typename IdxT, typename EposT>
void gat_backward_src_rows(const std::int64_t* __restrict__ t_indptr,
                           const IdxT* __restrict__ t_indices,
                           const EposT* __restrict__ epos,
                           const float* __restrict__ grad_out,
                           const float* __restrict__ pa,
                           const float* __restrict__ pdz,
                           float* __restrict__ phg, float* __restrict__ psrg,
                           std::int64_t lo, std::int64_t hi) {
  constexpr std::int64_t HD = static_cast<std::int64_t>(H) * D;
  for (std::int64_t j = lo; j < hi; ++j) {
    const std::int64_t begin = t_indptr[j], end = t_indptr[j + 1];
    float* __restrict__ hgrow = phg != nullptr ? phg + j * HD : nullptr;
    float dsr[H] = {};
    for (std::int64_t te = begin; te < end; ++te) {
      if (te + kGatPrefetchDist < end) {
        spmm_prefetch_row<HD>(
            grad_out +
            static_cast<std::int64_t>(t_indices[te + kGatPrefetchDist]) * HD);
      }
      const auto i = static_cast<std::int64_t>(t_indices[te]);
      const auto e = static_cast<std::int64_t>(epos[te]);
      if (psrg != nullptr) {
        const float* __restrict__ dze = pdz + e * H;
        for (int h = 0; h < H; ++h) dsr[h] += dze[h];
      }
      if (hgrow != nullptr) {
        const float* __restrict__ grow = grad_out + i * HD;
        const float* __restrict__ ae = pa + e * H;
        for (int h = 0; h < H; ++h) {
          const float a = ae[h];
#pragma omp simd
          for (int j2 = 0; j2 < D; ++j2) {
            hgrow[h * D + j2] += a * grow[h * D + j2];
          }
        }
      }
    }
    if (psrg != nullptr) {
      for (int h = 0; h < H; ++h) psrg[j * H + h] += dsr[h];
    }
  }
}

/// Runtime-shape fallback for backward pass 2.
template <typename IdxT, typename EposT>
void gat_backward_src_rows_generic(
    const std::int64_t* __restrict__ t_indptr,
    const IdxT* __restrict__ t_indices, const EposT* __restrict__ epos,
    const float* __restrict__ grad_out, const float* __restrict__ pa,
    const float* __restrict__ pdz, float* __restrict__ phg,
    float* __restrict__ psrg, std::int64_t heads, std::int64_t d,
    std::int64_t lo, std::int64_t hi) {
  const std::int64_t hd = heads * d;
  for (std::int64_t j = lo; j < hi; ++j) {
    const std::int64_t begin = t_indptr[j], end = t_indptr[j + 1];
    float* __restrict__ hgrow = phg != nullptr ? phg + j * hd : nullptr;
    for (std::int64_t te = begin; te < end; ++te) {
      const auto i = static_cast<std::int64_t>(t_indices[te]);
      const auto e = static_cast<std::int64_t>(epos[te]);
      if (psrg != nullptr) {
        const float* __restrict__ dze = pdz + e * heads;
        float* __restrict__ srow = psrg + j * heads;
        for (std::int64_t h = 0; h < heads; ++h) srow[h] += dze[h];
      }
      if (hgrow != nullptr) {
        const float* __restrict__ grow = grad_out + i * hd;
        const float* __restrict__ ae = pa + e * heads;
        for (std::int64_t h = 0; h < heads; ++h) {
          const float a = ae[h];
          const float* __restrict__ gseg = grow + h * d;
          float* __restrict__ hseg = hgrow + h * d;
#pragma omp simd
          for (std::int64_t j2 = 0; j2 < d; ++j2) {
            hseg[j2] += a * gseg[j2];
          }
        }
      }
    }
  }
}

/// Shape dispatch for the attention kernels: specialise the common GAT
/// shapes (heads 1/2/4/8 × per-head dim 8/16/32/64/128, every
/// configuration the paper's models produce); anything else runs the
/// head-tiled generic body. `spec` is invoked as spec<D, H>().
template <int H, typename F>
bool gat_dispatch_d(std::int64_t d, F&& spec) {
  switch (d) {
    case 8: spec.template operator()<8, H>(); return true;
    case 16: spec.template operator()<16, H>(); return true;
    case 32: spec.template operator()<32, H>(); return true;
    case 64: spec.template operator()<64, H>(); return true;
    case 128: spec.template operator()<128, H>(); return true;
    default: return false;
  }
}

template <typename F, typename G>
void gat_dispatch(std::int64_t heads, std::int64_t d, F&& spec,
                  G&& generic) {
  bool hit = false;
  switch (heads) {
    case 1: hit = gat_dispatch_d<1>(d, spec); break;
    case 2: hit = gat_dispatch_d<2>(d, spec); break;
    case 4: hit = gat_dispatch_d<4>(d, spec); break;
    case 8: hit = gat_dispatch_d<8>(d, spec); break;
    default: break;
  }
  if (!hit) generic();
}

template <typename Idx>
void run_gat_forward(const std::int64_t* indptr, const Idx* indices,
                     const float* sl, const float* sr, const float* ph,
                     float* pa, float* po, std::int64_t heads, std::int64_t d,
                     float slope, std::int64_t lo, std::int64_t hi) {
  gat_dispatch(
      heads, d,
      [&]<int D, int H>() {
        gat_forward_rows<D, H>(indptr, indices, sl, sr, ph, pa, po, slope,
                               lo, hi);
      },
      [&] {
        gat_forward_rows_generic(indptr, indices, sl, sr, ph, pa, po, heads,
                                 d, slope, lo, hi);
      });
}

template <typename Idx>
void run_gat_infer(const std::int64_t* indptr, const Idx* indices,
                   const float* sl, const float* sr, const float* ph,
                   float* pa, float* po, std::int64_t heads, std::int64_t d,
                   float slope, std::int64_t lo, std::int64_t hi) {
  gat_dispatch(
      heads, d,
      [&]<int D, int H>() {
        gat_infer_rows<D, H>(indptr, indices, sl, sr, ph, pa, po, slope, lo,
                             hi);
      },
      [&] {
        gat_infer_rows_generic(indptr, indices, sl, sr, ph, pa, po, heads, d,
                               slope, lo, hi);
      });
}

template <typename Idx>
void run_gat_backward_dst(const std::int64_t* indptr, const Idx* indices,
                          const float* grad_out, const float* pa,
                          const float* ph, const float* sl, const float* sr,
                          float* pdz, float* pslg, std::int64_t heads,
                          std::int64_t d, float slope, std::int64_t lo,
                          std::int64_t hi) {
  gat_dispatch(
      heads, d,
      [&]<int D, int H>() {
        gat_backward_dst_rows<D, H>(indptr, indices, grad_out, pa, ph, sl,
                                    sr, pdz, pslg, slope, lo, hi);
      },
      [&] {
        gat_backward_dst_rows_generic(indptr, indices, grad_out, pa, ph, sl,
                                      sr, pdz, pslg, heads, d, slope, lo,
                                      hi);
      });
}

template <typename IdxT, typename EposT>
void run_gat_backward_src(const std::int64_t* t_indptr,
                          const IdxT* t_indices, const EposT* epos,
                          const float* grad_out, const float* pa,
                          const float* pdz, float* phg, float* psrg,
                          std::int64_t heads, std::int64_t d,
                          std::int64_t lo, std::int64_t hi) {
  gat_dispatch(
      heads, d,
      [&]<int D, int H>() {
        gat_backward_src_rows<D, H>(t_indptr, t_indices, epos, grad_out, pa,
                                    pdz, phg, psrg, lo, hi);
      },
      [&] {
        gat_backward_src_rows_generic(t_indptr, t_indices, epos, grad_out,
                                      pa, pdz, phg, psrg, heads, d, lo, hi);
      });
}

void gat_check_shapes(std::int64_t n, std::int64_t e_count,
                      const Tensor& h_src, const Tensor& score_dst,
                      const Tensor& score_src, std::int64_t heads,
                      const Tensor& alpha, const Tensor& out) {
  GSOUP_CHECK_MSG(h_src.rank() == 2 && h_src.shape(1) % heads == 0,
                  "gat_attention_forward: bad H shape " << h_src.shape_str());
  const std::int64_t d = h_src.shape(1) / heads;
  GSOUP_CHECK_MSG(score_dst.shape(0) == n && score_dst.shape(1) == heads &&
                      score_src.shape(0) == h_src.shape(0) &&
                      score_src.shape(1) == heads,
                  "gat_attention_forward: bad score shapes");
  GSOUP_CHECK_MSG(alpha.shape(0) == e_count && alpha.shape(1) == heads,
                  "gat_attention_forward: bad alpha workspace shape");
  GSOUP_CHECK_MSG(out.shape(0) == n && out.shape(1) == heads * d,
                  "gat_attention_forward: bad output shape");
}

/// Shape checks for the alpha-free infer entry points.
void gat_check_shapes_infer(std::int64_t n, const Tensor& h_src,
                            const Tensor& score_dst, const Tensor& score_src,
                            std::int64_t heads, const Tensor& out) {
  GSOUP_CHECK_MSG(h_src.rank() == 2 && h_src.shape(1) % heads == 0,
                  "gat_attention_infer: bad H shape " << h_src.shape_str());
  GSOUP_CHECK_MSG(score_dst.shape(0) == n && score_dst.shape(1) == heads &&
                      score_src.shape(0) == h_src.shape(0) &&
                      score_src.shape(1) == heads,
                  "gat_attention_infer: bad score shapes");
  GSOUP_CHECK_MSG(out.shape(0) == n && out.shape(1) == h_src.shape(1),
                  "gat_attention_infer: bad output shape");
}

/// Reusable [E, heads] backward scratch, one per thread so concurrent
/// ingredient-farm backwards never race; grows monotonically, so the GAT
/// backward allocates nothing once warm (the contents are fully
/// overwritten by pass 1 before pass 2 reads them — no zeroing either).
float* gat_dz_workspace(std::int64_t numel) {
  thread_local Tensor ws;
  if (!ws.defined() || ws.numel() < numel) {
    ws = Tensor::empty({std::max<std::int64_t>(numel, 1)});
  }
  return ws.data();
}

}  // namespace

void spmm_reference(const Csr& a, const Tensor& x, Tensor& y) {
  const std::int64_t n = a.num_nodes;
  const std::int64_t d = x.shape(1);
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = a.indptr.data();
  const auto* __restrict__ indices = a.indices.data();
  const auto* __restrict__ values = a.values.data();
  // Seed kernel, verbatim: row-parallel dynamic schedule, no prefetch.
#pragma omp parallel for schedule(dynamic, 64) \
    if (n >= kParallelRowThreshold)
  for (std::int64_t i = 0; i < n; ++i) {
    float* __restrict__ yrow = py + i * d;
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float w = values[e];
      const float* __restrict__ xrow = px + indices[e] * d;
      for (std::int64_t j = 0; j < d; ++j) yrow[j] += w * xrow[j];
    }
  }
}

void spmm_accumulate(const Csr& a, const Tensor& x, Tensor& y) {
  spmm_dispatch<false>(a.indptr, a.indices, a.values, x, y);
}

void spmm_overwrite(const Csr& a, const Tensor& x, Tensor& y) {
  spmm_dispatch<true>(a.indptr, a.indices, a.values, x, y);
}

void spmm_blocked_accumulate(const graph::BlockedCsr& a, const Tensor& x,
                             Tensor& y) {
  spmm_blocked_dispatch<false>(a, x, y);
}

void spmm_blocked_overwrite(const graph::BlockedCsr& a, const Tensor& x,
                            Tensor& y) {
  spmm_blocked_dispatch<true>(a, x, y);
}

void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const Tensor& x,
                          Tensor& y) {
  GSOUP_CHECK_MSG(!indptr.empty() && values.size() == indices.size(),
                  "spmm_spans_overwrite: malformed CSR spans");
  GSOUP_CHECK_MSG(y.shape(0) + 1 == static_cast<std::int64_t>(indptr.size()) &&
                      y.shape(1) == x.shape(1),
                  "spmm_spans_overwrite: bad output shape " << y.shape_str());
  spmm_dispatch<true>(indptr, indices, values, x, y);
}

void spmm_blocked_overwrite(const graph::BlockedCsr& a, const HalfBuffer& x,
                            Tensor& y) {
  GSOUP_CHECK_MSG(x.rank() == 2 && y.rank() == 2 &&
                      y.shape(0) == a.num_rows && y.shape(1) == x.shape(1),
                  "blocked spmm(half): bad shapes " << x.shape_str() << " -> "
                                                    << y.shape_str());
  if (x.precision() == Precision::kFp16) {
    spmm_blocked_dispatch_t<true, std::uint16_t, half::widen_fp16>(
        a, x.data(), x.shape(1), y, x.precision());
  } else {
    spmm_blocked_dispatch_t<true, std::uint16_t, half::widen_bf16>(
        a, x.data(), x.shape(1), y, x.precision());
  }
}

void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const HalfBuffer& x,
                          Tensor& y) {
  GSOUP_CHECK_MSG(!indptr.empty() && values.size() == indices.size(),
                  "spmm_spans_overwrite: malformed CSR spans");
  GSOUP_CHECK_MSG(x.rank() == 2 &&
                      y.shape(0) + 1 == static_cast<std::int64_t>(indptr.size()) &&
                      y.shape(1) == x.shape(1),
                  "spmm_spans_overwrite(half): bad output shape "
                      << y.shape_str());
  if (x.precision() == Precision::kFp16) {
    spmm_dispatch_t<true, std::uint16_t, half::widen_fp16>(
        indptr, indices, values, x.data(), x.shape(1), y, x.precision());
  } else {
    spmm_dispatch_t<true, std::uint16_t, half::widen_bf16>(
        indptr, indices, values, x.data(), x.shape(1), y, x.precision());
  }
}

Value spmm(const Csr& a, const Csr& a_transpose, const Value& x) {
  return spmm(a, a_transpose, x, nullptr, nullptr);
}

Value spmm(const Csr& a, const Csr& a_transpose, const Value& x,
           const graph::BlockedCsr* layout,
           const graph::BlockedCsr* layout_t) {
  GSOUP_CHECK_MSG(a.weighted() && a_transpose.weighted(),
                  "spmm operands must carry edge values");
  GSOUP_CHECK_MSG(x->value.rank() == 2 && x->value.shape(0) == a.num_nodes,
                  "spmm: X shape " << x->value.shape_str()
                                   << " incompatible with graph of "
                                   << a.num_nodes << " nodes");
  GSOUP_CHECK_MSG(layout == nullptr || (layout->num_rows == a.num_nodes &&
                                        layout->num_edges() == a.num_edges()),
                  "spmm: layout does not match the forward adjacency");
  GSOUP_CHECK_MSG(layout_t == nullptr ||
                      (layout_t->num_rows == a_transpose.num_nodes &&
                       layout_t->num_edges() == a_transpose.num_edges()),
                  "spmm: layout_t does not match the transpose adjacency");
  Tensor out = Tensor::empty({a.num_nodes, x->value.shape(1)});
  if (layout != nullptr) {
    spmm_blocked_overwrite(*layout, x->value, out);
  } else {
    spmm_overwrite(a, x->value, out);
  }
  const Csr* at = &a_transpose;
  return make_node(
      std::move(out), {x},
      [x, at, layout_t](Node& node) {
        if (!x->requires_grad) return;
        if (layout_t != nullptr) {
          spmm_blocked_accumulate(*layout_t, node.grad, x->ensure_grad());
        } else {
          spmm_accumulate(*at, node.grad, x->ensure_grad());
        }
      },
      "spmm");
}

void gat_attention_forward(std::span<const std::int64_t> sp_indptr,
                           std::span<const std::int32_t> sp_indices,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out) {
  const auto n = static_cast<std::int64_t>(sp_indptr.size()) - 1;
  const auto e_count = static_cast<std::int64_t>(sp_indices.size());
  gat_check_shapes(n, e_count, h_src, score_dst, score_src, heads, alpha,
                   out);
  const std::int64_t d = h_src.shape(1) / heads;
  const float* sl = score_dst.data();
  const float* sr = score_src.data();
  const float* ph = h_src.data();
  float* pa = alpha.data();
  float* po = out.data();
  const auto* indptr = sp_indptr.data();
  const auto* indices = sp_indices.data();
  for_each_balanced_row(sp_indptr, [&](std::int64_t lo, std::int64_t hi) {
    run_gat_forward(indptr, indices, sl, sr, ph, pa, po, heads, d, slope, lo,
                    hi);
  });
}

void gat_attention_forward(const graph::BlockedCsr& layout,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out) {
  gat_check_shapes(layout.num_rows, layout.num_edges(), h_src, score_dst,
                   score_src, heads, alpha, out);
  const std::int64_t d = h_src.shape(1) / heads;
  const float* sl = score_dst.data();
  const float* sr = score_src.data();
  const float* ph = h_src.data();
  float* pa = alpha.data();
  float* po = out.data();
  const auto* indptr = layout.indptr.data();
  const auto run = [&](const auto* indices) {
    for_each_row_block(layout.row_blocks, layout.num_rows,
                       [&](std::int64_t lo, std::int64_t hi) {
                         run_gat_forward(indptr, indices, sl, sr, ph, pa, po,
                                         heads, d, slope, lo, hi);
                       });
  };
  if (layout.narrow()) {
    run(layout.idx16.data());
  } else {
    run(layout.idx32.data());
  }
}

void gat_attention_infer(std::span<const std::int64_t> sp_indptr,
                         std::span<const std::int32_t> sp_indices,
                         const Tensor& h_src, const Tensor& score_dst,
                         const Tensor& score_src, std::int64_t heads,
                         float slope, Tensor& out) {
  const auto n = static_cast<std::int64_t>(sp_indptr.size()) - 1;
  gat_check_shapes_infer(n, h_src, score_dst, score_src, heads, out);
  const std::int64_t d = h_src.shape(1) / heads;
  const float* sl = score_dst.data();
  const float* sr = score_src.data();
  const float* ph = h_src.data();
  // Per-edge act/p scratch: the reusable thread-local workspace the
  // backward also uses (disjoint row ranges index disjoint edge slices,
  // so one shared buffer is race-free) — no caller-visible alpha tensor.
  float* pa = gat_dz_workspace(
      static_cast<std::int64_t>(sp_indices.size()) * heads);
  float* po = out.data();
  const auto* indptr = sp_indptr.data();
  const auto* indices = sp_indices.data();
  for_each_balanced_row(sp_indptr, [&](std::int64_t lo, std::int64_t hi) {
    run_gat_infer(indptr, indices, sl, sr, ph, pa, po, heads, d, slope, lo,
                  hi);
  });
}

void gat_attention_infer(const graph::BlockedCsr& layout, const Tensor& h_src,
                         const Tensor& score_dst, const Tensor& score_src,
                         std::int64_t heads, float slope, Tensor& out) {
  gat_check_shapes_infer(layout.num_rows, h_src, score_dst, score_src, heads,
                         out);
  const std::int64_t d = h_src.shape(1) / heads;
  const float* sl = score_dst.data();
  const float* sr = score_src.data();
  const float* ph = h_src.data();
  float* pa = gat_dz_workspace(layout.num_edges() * heads);
  float* po = out.data();
  const auto* indptr = layout.indptr.data();
  const auto run = [&](const auto* indices) {
    for_each_row_block(layout.row_blocks, layout.num_rows,
                       [&](std::int64_t lo, std::int64_t hi) {
                         run_gat_infer(indptr, indices, sl, sr, ph, pa, po,
                                       heads, d, slope, lo, hi);
                       });
  };
  if (layout.narrow()) {
    run(layout.idx16.data());
  } else {
    run(layout.idx32.data());
  }
}

void gat_attention_forward_reference(std::span<const std::int64_t> sp_indptr,
                                     std::span<const std::int32_t> sp_indices,
                                     const Tensor& h_src,
                                     const Tensor& score_dst,
                                     const Tensor& score_src,
                                     std::int64_t heads, float slope,
                                     Tensor& alpha, Tensor& out) {
  const auto n = static_cast<std::int64_t>(sp_indptr.size()) - 1;
  const auto e_count = static_cast<std::int64_t>(sp_indices.size());
  gat_check_shapes(n, e_count, h_src, score_dst, score_src, heads, alpha,
                   out);
  const std::int64_t d = h_src.shape(1) / heads;
  const float* __restrict__ sl = score_dst.data();
  const float* __restrict__ sr = score_src.data();
  const float* __restrict__ ph = h_src.data();
  float* __restrict__ pa = alpha.data();
  float* __restrict__ po = out.data();
  const auto* __restrict__ indptr = sp_indptr.data();
  const auto* __restrict__ indices = sp_indices.data();
  for_each_balanced_row(sp_indptr, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::int64_t begin = indptr[i], end = indptr[i + 1];
      for (std::int64_t head = 0; head < heads; ++head) {
        // Numerically stable softmax over LeakyReLU(sl_i + sr_j).
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t e = begin; e < end; ++e) {
          const float z = sl[i * heads + head] +
                          sr[indices[e] * heads + head];
          const float act = z > 0.0f ? z : slope * z;
          pa[e * heads + head] = act;
          mx = std::max(mx, act);
        }
        float denom = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float v = std::exp(pa[e * heads + head] - mx);
          pa[e * heads + head] = v;
          denom += v;
        }
        const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          pa[e * heads + head] *= inv;
        }
        // Aggregate: out[i, head*d:] = sum_e alpha_e * H[src_e, head*d:].
        float* __restrict__ orow = po + i * heads * d + head * d;
        for (std::int64_t j = 0; j < d; ++j) orow[j] = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float a = pa[e * heads + head];
          const float* __restrict__ hrow =
              ph + indices[e] * heads * d + head * d;
          for (std::int64_t j = 0; j < d; ++j) orow[j] += a * hrow[j];
        }
      }
    }
  });
}

void gat_attention_backward(std::span<const std::int64_t> indptr,
                            std::span<const std::int32_t> indices,
                            const CsrTranspose& graph_t, const Tensor& h_src,
                            const Tensor& score_dst, const Tensor& score_src,
                            const Tensor& alpha, const Tensor& grad_out,
                            std::int64_t heads, float slope, Tensor* dh,
                            Tensor* dscore_dst, Tensor* dscore_src) {
  const auto e_count = static_cast<std::int64_t>(indices.size());
  gat_check_shapes(static_cast<std::int64_t>(indptr.size()) - 1, e_count,
                   h_src, score_dst, score_src, heads, alpha, grad_out);
  if (e_count == 0 || (dh == nullptr && dscore_dst == nullptr &&
                       dscore_src == nullptr)) {
    return;
  }
  const std::int64_t d = h_src.shape(1) / heads;
  float* pdz = gat_dz_workspace(e_count * heads);
  const auto* f_indptr = indptr.data();
  const auto* f_indices = indices.data();
  for_each_balanced_row(indptr, [&](std::int64_t lo, std::int64_t hi) {
    run_gat_backward_dst(f_indptr, f_indices, grad_out.data(), alpha.data(),
                         h_src.data(), score_dst.data(), score_src.data(),
                         pdz,
                         dscore_dst != nullptr ? dscore_dst->data() : nullptr,
                         heads, d, slope, lo, hi);
  });
  if (dh == nullptr && dscore_src == nullptr) return;
  const auto* t_indptr = graph_t.graph.indptr.data();
  const auto* t_indices = graph_t.graph.indices.data();
  const auto* edge_map = graph_t.edge_map.data();
  for_each_balanced_row(graph_t.graph.indptr,
                        [&](std::int64_t lo, std::int64_t hi) {
                          run_gat_backward_src(
                              t_indptr, t_indices, edge_map, grad_out.data(),
                              alpha.data(), pdz,
                              dh != nullptr ? dh->data() : nullptr,
                              dscore_src != nullptr ? dscore_src->data()
                                                    : nullptr,
                              heads, d, lo, hi);
                        });
}

void gat_attention_backward(const graph::BlockedCsr& layout,
                            const graph::BlockedCsr& layout_t,
                            const Tensor& h_src, const Tensor& score_dst,
                            const Tensor& score_src, const Tensor& alpha,
                            const Tensor& grad_out, std::int64_t heads,
                            float slope, Tensor* dh, Tensor* dscore_dst,
                            Tensor* dscore_src) {
  const std::int64_t e_count = layout.num_edges();
  gat_check_shapes(layout.num_rows, e_count, h_src, score_dst, score_src,
                   heads, alpha, grad_out);
  if (e_count == 0 || (dh == nullptr && dscore_dst == nullptr &&
                       dscore_src == nullptr)) {
    return;  // zero-edge graphs have no epos and nothing to do
  }
  GSOUP_CHECK_MSG(layout_t.num_edges() == e_count &&
                      !layout_t.epos.empty(),
                  "gat_attention_backward: layout_t must be a cached "
                  "transpose with edge positions");
  const std::int64_t d = h_src.shape(1) / heads;
  float* pdz = gat_dz_workspace(e_count * heads);
  const auto* f_indptr = layout.indptr.data();
  const auto run_dst = [&](const auto* f_indices) {
    for_each_row_block(
        layout.row_blocks, layout.num_rows,
        [&](std::int64_t lo, std::int64_t hi) {
          run_gat_backward_dst(
              f_indptr, f_indices, grad_out.data(), alpha.data(),
              h_src.data(), score_dst.data(), score_src.data(), pdz,
              dscore_dst != nullptr ? dscore_dst->data() : nullptr, heads, d,
              slope, lo, hi);
        });
  };
  if (layout.narrow()) {
    run_dst(layout.idx16.data());
  } else {
    run_dst(layout.idx32.data());
  }
  if (dh == nullptr && dscore_src == nullptr) return;
  const auto* t_indptr = layout_t.indptr.data();
  const auto* epos = layout_t.epos.data();
  const auto run_src = [&](const auto* t_indices) {
    for_each_row_block(
        layout_t.row_blocks, layout_t.num_rows,
        [&](std::int64_t lo, std::int64_t hi) {
          run_gat_backward_src(t_indptr, t_indices, epos, grad_out.data(),
                               alpha.data(), pdz,
                               dh != nullptr ? dh->data() : nullptr,
                               dscore_src != nullptr ? dscore_src->data()
                                                     : nullptr,
                               heads, d, lo, hi);
        });
  };
  if (layout_t.narrow()) {
    run_src(layout_t.idx16.data());
  } else {
    run_src(layout_t.idx32.data());
  }
}

void gat_attention_backward_reference(
    std::span<const std::int64_t> sp_indptr,
    std::span<const std::int32_t> sp_indices, const CsrTranspose& graph_t,
    const Tensor& h_src, const Tensor& score_dst, const Tensor& score_src,
    const Tensor& alpha, const Tensor& grad_out, std::int64_t heads,
    float slope, Tensor* dh, Tensor* dscore_dst, Tensor* dscore_src) {
  const auto ee = static_cast<std::int64_t>(sp_indices.size());
  const std::int64_t d = h_src.shape(1) / heads;
  const float* __restrict__ grad = grad_out.data();
  const float* __restrict__ pa = alpha.data();
  const float* __restrict__ ph = h_src.data();
  const float* __restrict__ sl = score_dst.data();
  const float* __restrict__ sr = score_src.data();

  // Pass 1 (parallel over dst): softmax + leaky-relu backward per
  // (dst, head); writes dz per edge, accumulates dscore_dst. The seed
  // allocates the dz scratch fresh on every call.
  Tensor dz = Tensor::zeros({std::max<std::int64_t>(ee, 1), heads});
  float* __restrict__ pdz = dz.data();
  float* __restrict__ pslg = dscore_dst != nullptr ? dscore_dst->data()
                                                   : nullptr;
  const auto* __restrict__ indptr = sp_indptr.data();
  const auto* __restrict__ indices = sp_indices.data();
  for_each_balanced_row(sp_indptr, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::int64_t begin = indptr[i], end = indptr[i + 1];
      for (std::int64_t head = 0; head < heads; ++head) {
        const float* __restrict__ grow = grad + i * heads * d + head * d;
        // d_alpha_e = <dOut_i, H_src>; inner = Σ alpha * d_alpha.
        float inner = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float* __restrict__ hrow =
              ph + indices[e] * heads * d + head * d;
          float dot = 0.0f;
          for (std::int64_t j = 0; j < d; ++j) dot += grow[j] * hrow[j];
          pdz[e * heads + head] = dot;  // stash d_alpha temporarily
          inner += pa[e * heads + head] * dot;
        }
        float dsl_acc = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float a = pa[e * heads + head];
          const float de = a * (pdz[e * heads + head] - inner);
          const float z = sl[i * heads + head] +
                          sr[indices[e] * heads + head];
          const float dzv = de * (z > 0.0f ? 1.0f : slope);
          pdz[e * heads + head] = dzv;
          dsl_acc += dzv;
        }
        if (pslg != nullptr) pslg[i * heads + head] += dsl_acc;
      }
    }
  });

  // Pass 2 (parallel over src via the transpose): scatter dz into
  // dscore_src and alpha·dOut into dH, race-free because each thread
  // owns one source row.
  float* __restrict__ phg = dh != nullptr ? dh->data() : nullptr;
  float* __restrict__ psrg = dscore_src != nullptr ? dscore_src->data()
                                                   : nullptr;
  if (phg == nullptr && psrg == nullptr) return;
  const auto* __restrict__ t_indptr = graph_t.graph.indptr.data();
  const auto* __restrict__ t_indices = graph_t.graph.indices.data();
  const auto* __restrict__ edge_map = graph_t.edge_map.data();
  for_each_balanced_row(
      graph_t.graph.indptr, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) {
          for (std::int64_t te = t_indptr[j]; te < t_indptr[j + 1]; ++te) {
            const std::int64_t i = t_indices[te];  // dst of original edge
            const std::int64_t e = edge_map[te];   // original edge id
            for (std::int64_t head = 0; head < heads; ++head) {
              if (psrg != nullptr) {
                psrg[j * heads + head] += pdz[e * heads + head];
              }
              if (phg != nullptr) {
                const float a = pa[e * heads + head];
                const float* __restrict__ grow =
                    grad + i * heads * d + head * d;
                float* __restrict__ hgrow =
                    phg + j * heads * d + head * d;
                for (std::int64_t jj = 0; jj < d; ++jj) {
                  hgrow[jj] += a * grow[jj];
                }
              }
            }
          }
        }
      });
}

Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope) {
  return gat_attention(graph, graph_t, h, score_dst, score_src, heads, slope,
                       nullptr, nullptr);
}

Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope,
                    const graph::BlockedCsr* layout,
                    const graph::BlockedCsr* layout_t) {
  const std::int64_t n = graph.num_nodes;
  const std::int64_t e_count = graph.num_edges();
  GSOUP_CHECK_MSG(h->value.rank() == 2 && h->value.shape(0) == n &&
                      h->value.shape(1) % heads == 0,
                  "gat_attention: bad H shape " << h->value.shape_str());
  GSOUP_CHECK_MSG(score_dst->value.shape(0) == n &&
                      score_dst->value.shape(1) == heads &&
                      score_src->value.shape(0) == n &&
                      score_src->value.shape(1) == heads,
                  "gat_attention: bad score shapes");
  GSOUP_CHECK_MSG(layout == nullptr || (layout->num_rows == n &&
                                        layout->num_edges() == e_count),
                  "gat_attention: layout does not match the graph");
  GSOUP_CHECK_MSG(layout_t == nullptr ||
                      (layout_t->num_rows == n &&
                       layout_t->num_edges() == e_count &&
                       (e_count == 0 || !layout_t->epos.empty())),
                  "gat_attention: layout_t must be a cached transpose with "
                  "edge positions over the same graph");
  const std::int64_t d = h->value.shape(1) / heads;

  // Forward: the shared autograd-free kernel; alpha (E × heads) is
  // retained for the backward pass.
  Tensor alpha = Tensor::empty({e_count, heads});
  Tensor out = Tensor::empty({n, heads * d});
  if (layout != nullptr) {
    gat_attention_forward(*layout, h->value, score_dst->value,
                          score_src->value, heads, slope, alpha, out);
  } else {
    gat_attention_forward(graph.indptr, graph.indices, h->value,
                          score_dst->value, score_src->value, heads, slope,
                          alpha, out);
  }

  const Csr* g = &graph;
  const CsrTranspose* gt = &graph_t;
  return make_node(
      std::move(out), {h, score_dst, score_src},
      [h, score_dst, score_src, alpha, g, gt, layout, layout_t, heads,
       slope](Node& node) {
        Tensor* dh = h->requires_grad ? &h->ensure_grad() : nullptr;
        Tensor* dsl =
            score_dst->requires_grad ? &score_dst->ensure_grad() : nullptr;
        Tensor* dsr =
            score_src->requires_grad ? &score_src->ensure_grad() : nullptr;
        // Layout-vs-span routing is the caller's (plan compiler's)
        // decision: exec::LayerStep passes layout_t = nullptr for
        // single-head steps, whose narrow-index instantiation measures
        // ~0.7x of its span twin (docs/BENCHMARKS.md).
        if (layout != nullptr && layout_t != nullptr) {
          gat_attention_backward(*layout, *layout_t, h->value,
                                 score_dst->value, score_src->value, alpha,
                                 node.grad, heads, slope, dh, dsl, dsr);
        } else {
          gat_attention_backward(g->indptr, g->indices, *gt, h->value,
                                 score_dst->value, score_src->value, alpha,
                                 node.grad, heads, slope, dh, dsl, dsr);
        }
      },
      "gat_attention");
}

Value block_spmm(const Block& block, const Value& x) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 &&
                      x->value.shape(0) == block.num_src(),
                  "block_spmm: X rows != block src count");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::empty({block.num_dst, d});
  {
    // Same edge-balanced chunking and fused-overwrite kernels as
    // spmm_overwrite: sampled blocks have bounded fanout, but
    // union-subgraph blocks inherit the graph's skew.
    const float* __restrict__ px = x->value.data();
    float* __restrict__ po = out.data();
    const auto* __restrict__ indptr = block.indptr.data();
    const auto* __restrict__ indices = block.indices.data();
    const auto* __restrict__ values = block.values.data();
    const std::int64_t e = block.num_edges();
    for_each_balanced_row(block.indptr,
                          [&](std::int64_t lo, std::int64_t hi) {
                            spmm_rows<true, std::int32_t, float,
                                      spmm_widen_f32>(indptr, indices,
                                                      values, px, po, d, e,
                                                      lo, hi);
                          });
  }
  // The backward dX = Bᵀ·dY runs as an edge-balanced SpMM gather over the
  // block's cached transpose (race-free by source row, no team clamp).
  // Blocks sampled with BlockTranspose::kBuild already carry it — the
  // counting sort ran (threaded, one task per layer) inside
  // sample_blocks, off this forward's critical path. The fallback build
  // here covers blocks from other producers (union subgraphs, tests).
  std::shared_ptr<const graph::BlockedCsr> bt = block.transpose;
  if (bt == nullptr && grad_enabled() && x->requires_grad) {
    bt = std::make_shared<const graph::BlockedCsr>(
        graph::build_blocked_transpose_spans(block.indptr, block.indices,
                                             block.values, block.num_src(),
                                             /*force_wide=*/false,
                                             /*with_epos=*/false));
  }
  return make_node(
      std::move(out), {x},
      [x, bt = std::move(bt)](Node& node) {
        if (!x->requires_grad) return;
        spmm_blocked_accumulate(*bt, node.grad, x->ensure_grad());
      },
      "block_spmm");
}

void block_spmm_backward_scatter(const Block& block, const Tensor& grad_out,
                                 Tensor& x_grad) {
  const std::int64_t d = grad_out.shape(1);
  GSOUP_CHECK_MSG(grad_out.shape(0) == block.num_dst &&
                      x_grad.shape(0) == block.num_src() &&
                      x_grad.shape(1) == d,
                  "block_spmm_backward_scatter: bad gradient shapes");
  const float* __restrict__ g = grad_out.data();
  float* __restrict__ dst = x_grad.data();
  const auto* __restrict__ indptr = block.indptr.data();
  const auto* __restrict__ indices = block.indices.data();
  const auto* __restrict__ values = block.values.data();
  const std::int64_t num_src = block.num_src();
  // Race-free parallel scatter (the seed backward): blocks carry no
  // transpose, so each thread walks every edge but only writes the source
  // rows in its own range. Every thread re-reads all E indices, so the
  // useful work per thread is ~d row-update lanes — clamp the team to d
  // threads or the redundant index walk dominates.
#ifdef _OPENMP
  const int scatter_threads = static_cast<int>(std::min<std::int64_t>(
      omp_get_max_threads(), std::max<std::int64_t>(d, 1)));
#else
  const int scatter_threads = 1;
#endif
#pragma omp parallel num_threads(scatter_threads) \
    if (block.num_edges() * d >= 1 << 16)
  {
    std::int64_t lo = 0, hi = num_src;
#ifdef _OPENMP
    const std::int64_t t = omp_get_thread_num();
    const std::int64_t nt = omp_get_num_threads();
    lo = num_src * t / nt;
    hi = num_src * (t + 1) / nt;
#endif
    for (std::int64_t i = 0; i < block.num_dst; ++i) {
      const float* __restrict__ grow = g + i * d;
      for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
        const std::int64_t s = indices[e];
        if (s < lo || s >= hi) continue;
        float* __restrict__ xrow = dst + s * d;
        const float w = values[e];
#pragma omp simd
        for (std::int64_t j = 0; j < d; ++j) xrow[j] += w * grow[j];
      }
    }
  }
}

Value narrow_rows(const Value& x, std::int64_t rows) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 && rows >= 0 &&
                      rows <= x->value.shape(0),
                  "narrow_rows out of range");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::empty({rows, d});
  std::memcpy(out.data(), x->value.data(),
              static_cast<std::size_t>(rows * d) * sizeof(float));
  return make_node(
      std::move(out), {x},
      [x, rows, d](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        float* __restrict__ dst = xg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::int64_t i = 0; i < rows * d; ++i) dst[i] += g[i];
      },
      "narrow_rows");
}

Value gather_rows(const Value& features,
                  std::span<const std::int64_t> row_ids) {
  GSOUP_CHECK_MSG(features->value.rank() == 2, "gather_rows needs rank-2");
  const std::int64_t d = features->value.shape(1);
  const auto m = static_cast<std::int64_t>(row_ids.size());
  Tensor out = Tensor::empty({m, d});
  const float* __restrict__ src = features->value.data();
  float* __restrict__ dst = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    GSOUP_DCHECK(row_ids[i] >= 0 && row_ids[i] < features->value.shape(0));
    std::memcpy(dst + i * d, src + row_ids[i] * d,
                static_cast<std::size_t>(d) * sizeof(float));
  }
  std::vector<std::int64_t> ids(row_ids.begin(), row_ids.end());
  return make_node(
      std::move(out), {features},
      [features, ids = std::move(ids), d](Node& node) {
        if (!features->requires_grad) return;
        Tensor& fg = features->ensure_grad();
        float* __restrict__ dstg = fg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::size_t i = 0; i < ids.size(); ++i) {
          float* row = dstg + ids[i] * d;
          const float* grow = g + static_cast<std::int64_t>(i) * d;
          for (std::int64_t j = 0; j < d; ++j) row[j] += grow[j];
        }
      },
      "gather_rows");
}

}  // namespace gsoup::ag
