#include "ag/graph_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph/locality.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace gsoup::ag {

namespace {

constexpr std::int64_t kParallelRowThreshold = 64;

// SpMM kernel bodies. Two levers over the naive per-edge loop, each worth
// measuring (see BENCH_kernels.json):
//   1. Compile-time feature width D: the naive runtime trip count costs a
//      vectoriser prologue/epilogue on every edge; common GNN widths get a
//      dedicated instantiation.
//   2. Dual accumulators: `y[j] += w*x[j]` per edge is a serial FMA chain
//      through the row (4-5 cycle latency each). Interleaving even/odd
//      edges into two register accumulators halves the chain, and the row
//      is stored once at the end instead of updated per edge.
// X rows a few edges ahead are software-prefetched to overlap gather
// latency. Overwrite=true stores `y = acc` (fused Y = A·X, skips the
// separate zero pass and Y re-read); false adds into existing Y (backward
// accumulation).

constexpr std::int64_t kSpmmPrefetchDist = 12;

template <int D>
inline void spmm_prefetch_row(const float* p) {
  __builtin_prefetch(p, 0, 3);
  if constexpr (D > 16) __builtin_prefetch(p + 16, 0, 3);
  if constexpr (D > 32) {
    __builtin_prefetch(p + 32, 0, 3);
    __builtin_prefetch(p + 48, 0, 3);
  }
  if constexpr (D > 64) {
    __builtin_prefetch(p + 64, 0, 3);
    __builtin_prefetch(p + 96, 0, 3);
  }
}

// The kernel bodies are additionally templated on the column-index type
// Idx: int32 for raw CSR spans, uint16 for cached graph::BlockedCsr
// layouts on graphs whose source-id domain fits 16 bits (half the index
// traffic per edge). The float operations are identical for every Idx, so
// layout and span paths agree bit-for-bit.
template <int D, bool Overwrite, typename Idx>
void spmm_rows_fixed(const std::int64_t* __restrict__ indptr,
                     const Idx* __restrict__ indices,
                     const float* __restrict__ values,
                     const float* __restrict__ px, float* __restrict__ py,
                     std::int64_t num_edges, std::int64_t lo,
                     std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t begin = indptr[i], end = indptr[i + 1];
    float* __restrict__ yrow = py + i * D;
    float acc0[D] = {}, acc1[D] = {};
    std::int64_t e = begin;
    for (; e + 1 < end; e += 2) {
      if (e + kSpmmPrefetchDist + 1 < num_edges) {
        spmm_prefetch_row<D>(
            px + static_cast<std::int64_t>(indices[e + kSpmmPrefetchDist]) *
                     D);
        spmm_prefetch_row<D>(
            px +
            static_cast<std::int64_t>(indices[e + kSpmmPrefetchDist + 1]) *
                D);
      }
      const float w0 = values[e], w1 = values[e + 1];
      const float* __restrict__ x0 =
          px + static_cast<std::int64_t>(indices[e]) * D;
      const float* __restrict__ x1 =
          px + static_cast<std::int64_t>(indices[e + 1]) * D;
#pragma omp simd
      for (int j = 0; j < D; ++j) {
        acc0[j] += w0 * x0[j];
        acc1[j] += w1 * x1[j];
      }
    }
    if (e < end) {
      const float w = values[e];
      const float* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * D;
#pragma omp simd
      for (int j = 0; j < D; ++j) acc0[j] += w * xrow[j];
    }
    if constexpr (Overwrite) {
#pragma omp simd
      for (int j = 0; j < D; ++j) yrow[j] = acc0[j] + acc1[j];
    } else {
#pragma omp simd
      for (int j = 0; j < D; ++j) yrow[j] += acc0[j] + acc1[j];
    }
  }
}

/// Fallback for feature widths without a fixed instantiation.
template <bool Overwrite, typename Idx>
void spmm_rows_generic(const std::int64_t* __restrict__ indptr,
                       const Idx* __restrict__ indices,
                       const float* __restrict__ values,
                       const float* __restrict__ px, float* __restrict__ py,
                       std::int64_t d, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    float* __restrict__ yrow = py + i * d;
    if constexpr (Overwrite) {
#pragma omp simd
      for (std::int64_t j = 0; j < d; ++j) yrow[j] = 0.0f;
    }
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float w = values[e];
      const float* __restrict__ xrow =
          px + static_cast<std::int64_t>(indices[e]) * d;
#pragma omp simd
      for (std::int64_t j = 0; j < d; ++j) yrow[j] += w * xrow[j];
    }
  }
}

template <bool Overwrite, typename Idx>
void spmm_rows(const std::int64_t* __restrict__ indptr,
               const Idx* __restrict__ indices,
               const float* __restrict__ values,
               const float* __restrict__ px, float* __restrict__ py,
               std::int64_t d, std::int64_t num_edges, std::int64_t lo,
               std::int64_t hi) {
  switch (d) {
    case 8:
      spmm_rows_fixed<8, Overwrite>(indptr, indices, values, px, py,
                                    num_edges, lo, hi);
      return;
    case 16:
      spmm_rows_fixed<16, Overwrite>(indptr, indices, values, px, py,
                                     num_edges, lo, hi);
      return;
    case 32:
      spmm_rows_fixed<32, Overwrite>(indptr, indices, values, px, py,
                                     num_edges, lo, hi);
      return;
    case 64:
      spmm_rows_fixed<64, Overwrite>(indptr, indices, values, px, py,
                                     num_edges, lo, hi);
      return;
    case 128:
      spmm_rows_fixed<128, Overwrite>(indptr, indices, values, px, py,
                                      num_edges, lo, hi);
      return;
    default:
      spmm_rows_generic<Overwrite>(indptr, indices, values, px, py, d, lo,
                                   hi);
  }
}

/// Shared driver: edge-balanced chunks over rows, then the width-dispatched
/// body per chunk. Spans rather than a Csr so bipartite block-local
/// structures (serving engine, minibatch blocks) run the same code path.
template <bool Overwrite>
void spmm_dispatch(std::span<const std::int64_t> sp_indptr,
                   std::span<const std::int32_t> sp_indices,
                   std::span<const float> sp_values, const Tensor& x,
                   Tensor& y) {
  const auto n = static_cast<std::int64_t>(sp_indptr.size()) - 1;
  const std::int64_t d = x.shape(1);
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = sp_indptr.data();
  const auto* __restrict__ indices = sp_indices.data();
  const auto* __restrict__ values = sp_values.data();
  const auto e = static_cast<std::int64_t>(sp_indices.size());
  if (n < kParallelRowThreshold) {
    spmm_rows<Overwrite>(indptr, indices, values, px, py, d, e, 0, n);
    return;
  }
  // Edge-balanced schedule: contiguous row ranges of ~equal nnz, a few per
  // thread, so hub rows of power-law graphs spread across the team without
  // per-row dynamic-scheduling overhead.
  const auto bounds = balanced_row_chunks(sp_indptr, balanced_chunk_count(n));
  const auto chunks = static_cast<std::int64_t>(bounds.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t c = 0; c < chunks; ++c) {
    spmm_rows<Overwrite>(indptr, indices, values, px, py, d, e,
                         bounds[static_cast<std::size_t>(c)],
                         bounds[static_cast<std::size_t>(c) + 1]);
  }
}

/// Driver for cached graph::BlockedCsr layouts: the edge-balanced row
/// blocks were pre-computed at layout build time (no binary search per
/// launch) and the gather loop runs at the layout's index width.
template <bool Overwrite>
void spmm_blocked_dispatch(const graph::BlockedCsr& a, const Tensor& x,
                           Tensor& y) {
  GSOUP_CHECK_MSG(x.rank() == 2 && y.rank() == 2 &&
                      y.shape(0) == a.num_rows && y.shape(1) == x.shape(1),
                  "blocked spmm: bad shapes " << x.shape_str() << " -> "
                                              << y.shape_str());
  const std::int64_t d = x.shape(1);
  const std::int64_t e = a.num_edges();
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = a.indptr.data();
  const auto* __restrict__ values = a.values.data();
  const auto run = [&](auto* indices) {
    if (a.num_rows < kParallelRowThreshold) {
      spmm_rows<Overwrite>(indptr, indices, values, px, py, d, e, 0,
                           a.num_rows);
      return;
    }
    const auto chunks =
        static_cast<std::int64_t>(a.row_blocks.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t c = 0; c < chunks; ++c) {
      spmm_rows<Overwrite>(indptr, indices, values, px, py, d, e,
                           a.row_blocks[static_cast<std::size_t>(c)],
                           a.row_blocks[static_cast<std::size_t>(c) + 1]);
    }
  };
  if (a.narrow()) {
    run(a.idx16.data());
  } else {
    run(a.idx32.data());
  }
}

}  // namespace

void spmm_reference(const Csr& a, const Tensor& x, Tensor& y) {
  const std::int64_t n = a.num_nodes;
  const std::int64_t d = x.shape(1);
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = a.indptr.data();
  const auto* __restrict__ indices = a.indices.data();
  const auto* __restrict__ values = a.values.data();
  // Seed kernel, verbatim: row-parallel dynamic schedule, no prefetch.
#pragma omp parallel for schedule(dynamic, 64) \
    if (n >= kParallelRowThreshold)
  for (std::int64_t i = 0; i < n; ++i) {
    float* __restrict__ yrow = py + i * d;
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float w = values[e];
      const float* __restrict__ xrow = px + indices[e] * d;
      for (std::int64_t j = 0; j < d; ++j) yrow[j] += w * xrow[j];
    }
  }
}

void spmm_accumulate(const Csr& a, const Tensor& x, Tensor& y) {
  spmm_dispatch<false>(a.indptr, a.indices, a.values, x, y);
}

void spmm_overwrite(const Csr& a, const Tensor& x, Tensor& y) {
  spmm_dispatch<true>(a.indptr, a.indices, a.values, x, y);
}

void spmm_blocked_accumulate(const graph::BlockedCsr& a, const Tensor& x,
                             Tensor& y) {
  spmm_blocked_dispatch<false>(a, x, y);
}

void spmm_blocked_overwrite(const graph::BlockedCsr& a, const Tensor& x,
                            Tensor& y) {
  spmm_blocked_dispatch<true>(a, x, y);
}

void spmm_spans_overwrite(std::span<const std::int64_t> indptr,
                          std::span<const std::int32_t> indices,
                          std::span<const float> values, const Tensor& x,
                          Tensor& y) {
  GSOUP_CHECK_MSG(!indptr.empty() && values.size() == indices.size(),
                  "spmm_spans_overwrite: malformed CSR spans");
  GSOUP_CHECK_MSG(y.shape(0) + 1 == static_cast<std::int64_t>(indptr.size()) &&
                      y.shape(1) == x.shape(1),
                  "spmm_spans_overwrite: bad output shape " << y.shape_str());
  spmm_dispatch<true>(indptr, indices, values, x, y);
}

Value spmm(const Csr& a, const Csr& a_transpose, const Value& x) {
  return spmm(a, a_transpose, x, nullptr, nullptr);
}

Value spmm(const Csr& a, const Csr& a_transpose, const Value& x,
           const graph::BlockedCsr* layout,
           const graph::BlockedCsr* layout_t) {
  GSOUP_CHECK_MSG(a.weighted() && a_transpose.weighted(),
                  "spmm operands must carry edge values");
  GSOUP_CHECK_MSG(x->value.rank() == 2 && x->value.shape(0) == a.num_nodes,
                  "spmm: X shape " << x->value.shape_str()
                                   << " incompatible with graph of "
                                   << a.num_nodes << " nodes");
  GSOUP_CHECK_MSG(layout == nullptr || (layout->num_rows == a.num_nodes &&
                                        layout->num_edges() == a.num_edges()),
                  "spmm: layout does not match the forward adjacency");
  GSOUP_CHECK_MSG(layout_t == nullptr ||
                      (layout_t->num_rows == a_transpose.num_nodes &&
                       layout_t->num_edges() == a_transpose.num_edges()),
                  "spmm: layout_t does not match the transpose adjacency");
  Tensor out = Tensor::empty({a.num_nodes, x->value.shape(1)});
  if (layout != nullptr) {
    spmm_blocked_overwrite(*layout, x->value, out);
  } else {
    spmm_overwrite(a, x->value, out);
  }
  const Csr* at = &a_transpose;
  return make_node(
      std::move(out), {x},
      [x, at, layout_t](Node& node) {
        if (!x->requires_grad) return;
        if (layout_t != nullptr) {
          spmm_blocked_accumulate(*layout_t, node.grad, x->ensure_grad());
        } else {
          spmm_accumulate(*at, node.grad, x->ensure_grad());
        }
      },
      "spmm");
}

void gat_attention_forward(std::span<const std::int64_t> sp_indptr,
                           std::span<const std::int32_t> sp_indices,
                           const Tensor& h_src, const Tensor& score_dst,
                           const Tensor& score_src, std::int64_t heads,
                           float slope, Tensor& alpha, Tensor& out) {
  const auto n = static_cast<std::int64_t>(sp_indptr.size()) - 1;
  const auto e_count = static_cast<std::int64_t>(sp_indices.size());
  GSOUP_CHECK_MSG(h_src.rank() == 2 && h_src.shape(1) % heads == 0,
                  "gat_attention_forward: bad H shape " << h_src.shape_str());
  const std::int64_t d = h_src.shape(1) / heads;
  GSOUP_CHECK_MSG(score_dst.shape(0) == n && score_dst.shape(1) == heads &&
                      score_src.shape(0) == h_src.shape(0) &&
                      score_src.shape(1) == heads,
                  "gat_attention_forward: bad score shapes");
  GSOUP_CHECK_MSG(alpha.shape(0) == e_count && alpha.shape(1) == heads,
                  "gat_attention_forward: bad alpha workspace shape");
  GSOUP_CHECK_MSG(out.shape(0) == n && out.shape(1) == heads * d,
                  "gat_attention_forward: bad output shape");

  const float* __restrict__ sl = score_dst.data();
  const float* __restrict__ sr = score_src.data();
  const float* __restrict__ ph = h_src.data();
  float* __restrict__ pa = alpha.data();
  float* __restrict__ po = out.data();
  const auto* __restrict__ indptr = sp_indptr.data();
  const auto* __restrict__ indices = sp_indices.data();
  // Edge-balanced chunks: attention work per row is proportional to
  // degree, so equal-nnz ranges keep the team busy on power-law graphs.
  // Below the parallel threshold the loop is serial, so skip the
  // binary-search pass and use a single chunk.
  const auto bounds =
      n < kParallelRowThreshold
          ? std::vector<std::int64_t>{0, n}
          : balanced_row_chunks(sp_indptr, balanced_chunk_count(n));
  const auto chunks = static_cast<std::int64_t>(bounds.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1) \
    if (n >= kParallelRowThreshold)
  for (std::int64_t c = 0; c < chunks; ++c)
    for (std::int64_t i = bounds[static_cast<std::size_t>(c)];
         i < bounds[static_cast<std::size_t>(c) + 1]; ++i) {
      const std::int64_t begin = indptr[i], end = indptr[i + 1];
      for (std::int64_t head = 0; head < heads; ++head) {
        // Numerically stable softmax over LeakyReLU(sl_i + sr_j).
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t e = begin; e < end; ++e) {
          const float z = sl[i * heads + head] +
                          sr[indices[e] * heads + head];
          const float act = z > 0.0f ? z : slope * z;
          pa[e * heads + head] = act;
          mx = std::max(mx, act);
        }
        float denom = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float v = std::exp(pa[e * heads + head] - mx);
          pa[e * heads + head] = v;
          denom += v;
        }
        const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          pa[e * heads + head] *= inv;
        }
        // Aggregate: out[i, head*d:] = sum_e alpha_e * H[src_e, head*d:].
        float* __restrict__ orow = po + i * heads * d + head * d;
        for (std::int64_t j = 0; j < d; ++j) orow[j] = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float a = pa[e * heads + head];
          const float* __restrict__ hrow =
              ph + indices[e] * heads * d + head * d;
          for (std::int64_t j = 0; j < d; ++j) orow[j] += a * hrow[j];
        }
      }
    }
}

Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope) {
  const std::int64_t n = graph.num_nodes;
  const std::int64_t e_count = graph.num_edges();
  GSOUP_CHECK_MSG(h->value.rank() == 2 && h->value.shape(0) == n &&
                      h->value.shape(1) % heads == 0,
                  "gat_attention: bad H shape " << h->value.shape_str());
  GSOUP_CHECK_MSG(score_dst->value.shape(0) == n &&
                      score_dst->value.shape(1) == heads &&
                      score_src->value.shape(0) == n &&
                      score_src->value.shape(1) == heads,
                  "gat_attention: bad score shapes");
  const std::int64_t d = h->value.shape(1) / heads;

  // Forward: the shared autograd-free kernel; alpha (E × heads) is
  // retained for the backward pass.
  Tensor alpha = Tensor::empty({e_count, heads});
  Tensor out = Tensor::empty({n, heads * d});
  gat_attention_forward(graph.indptr, graph.indices, h->value,
                        score_dst->value, score_src->value, heads, slope,
                        alpha, out);

  const Csr* g = &graph;
  const CsrTranspose* gt = &graph_t;
  return make_node(
      std::move(out), {h, score_dst, score_src},
      [h, score_dst, score_src, alpha, g, gt, heads, d, slope](Node& node) {
        const std::int64_t nn = g->num_nodes;
        const std::int64_t ee = g->num_edges();
        const float* __restrict__ grad_out = node.grad.data();
        const float* __restrict__ pa = alpha.data();
        const float* __restrict__ ph = h->value.data();
        const float* __restrict__ sl = score_dst->value.data();
        const float* __restrict__ sr = score_src->value.data();

        // Pass 1 (parallel over dst): softmax + leaky-relu backward per
        // (dst, head); writes dz per edge, accumulates dscore_dst.
        Tensor dz = Tensor::zeros({ee, heads});
        float* __restrict__ pdz = dz.data();
        const bool need_sl = score_dst->requires_grad;
        float* __restrict__ pslg =
            need_sl ? score_dst->ensure_grad().data() : nullptr;
        const auto* __restrict__ indptr = g->indptr.data();
        const auto* __restrict__ indices = g->indices.data();
        const auto bounds =
            nn < kParallelRowThreshold
                ? std::vector<std::int64_t>{0, nn}
                : balanced_row_chunks(g->indptr, balanced_chunk_count(nn));
        const auto chunks = static_cast<std::int64_t>(bounds.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1) \
    if (nn >= kParallelRowThreshold)
        for (std::int64_t c = 0; c < chunks; ++c)
        for (std::int64_t i = bounds[static_cast<std::size_t>(c)];
             i < bounds[static_cast<std::size_t>(c) + 1]; ++i) {
          const std::int64_t begin = indptr[i], end = indptr[i + 1];
          for (std::int64_t head = 0; head < heads; ++head) {
            const float* __restrict__ grow =
                grad_out + i * heads * d + head * d;
            // d_alpha_e = <dOut_i, H_src>; inner = Σ alpha * d_alpha.
            float inner = 0.0f;
            for (std::int64_t e = begin; e < end; ++e) {
              const float* __restrict__ hrow =
                  ph + indices[e] * heads * d + head * d;
              float dot = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) dot += grow[j] * hrow[j];
              pdz[e * heads + head] = dot;  // stash d_alpha temporarily
              inner += pa[e * heads + head] * dot;
            }
            float dsl_acc = 0.0f;
            for (std::int64_t e = begin; e < end; ++e) {
              const float a = pa[e * heads + head];
              const float de = a * (pdz[e * heads + head] - inner);
              const float z = sl[i * heads + head] +
                              sr[indices[e] * heads + head];
              const float dzv = de * (z > 0.0f ? 1.0f : slope);
              pdz[e * heads + head] = dzv;
              dsl_acc += dzv;
            }
            if (need_sl) pslg[i * heads + head] += dsl_acc;
          }
        }

        // Pass 2 (parallel over src via the transpose): scatter dz into
        // dscore_src and alpha·dOut into dH, race-free because each thread
        // owns one source row.
        const bool need_h = h->requires_grad;
        const bool need_sr = score_src->requires_grad;
        float* __restrict__ phg = need_h ? h->ensure_grad().data() : nullptr;
        float* __restrict__ psrg =
            need_sr ? score_src->ensure_grad().data() : nullptr;
        const auto* __restrict__ t_indptr = gt->graph.indptr.data();
        const auto* __restrict__ t_indices = gt->graph.indices.data();
        const auto* __restrict__ edge_map = gt->edge_map.data();
        const auto t_bounds =
            nn < kParallelRowThreshold
                ? std::vector<std::int64_t>{0, nn}
                : balanced_row_chunks(gt->graph.indptr,
                                      balanced_chunk_count(nn));
        const auto t_chunks = static_cast<std::int64_t>(t_bounds.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1) \
    if (nn >= kParallelRowThreshold)
        for (std::int64_t tc = 0; tc < t_chunks; ++tc)
        for (std::int64_t j = t_bounds[static_cast<std::size_t>(tc)];
             j < t_bounds[static_cast<std::size_t>(tc) + 1]; ++j) {
          for (std::int64_t te = t_indptr[j]; te < t_indptr[j + 1]; ++te) {
            const std::int64_t i = t_indices[te];   // dst of original edge
            const std::int64_t e = edge_map[te];    // original edge id
            for (std::int64_t head = 0; head < heads; ++head) {
              if (need_sr) {
                psrg[j * heads + head] += pdz[e * heads + head];
              }
              if (need_h) {
                const float a = pa[e * heads + head];
                const float* __restrict__ grow =
                    grad_out + i * heads * d + head * d;
                float* __restrict__ hgrow =
                    phg + j * heads * d + head * d;
                for (std::int64_t jj = 0; jj < d; ++jj) {
                  hgrow[jj] += a * grow[jj];
                }
              }
            }
          }
        }
      },
      "gat_attention");
}

Value block_spmm(const Block& block, const Value& x) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 &&
                      x->value.shape(0) == block.num_src(),
                  "block_spmm: X rows != block src count");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::empty({block.num_dst, d});
  {
    // Same edge-balanced chunking and fused-overwrite kernels as
    // spmm_overwrite: sampled blocks have bounded fanout, but
    // union-subgraph blocks inherit the graph's skew.
    const float* __restrict__ px = x->value.data();
    float* __restrict__ po = out.data();
    const auto* __restrict__ indptr = block.indptr.data();
    const auto* __restrict__ indices = block.indices.data();
    const auto* __restrict__ values = block.values.data();
    const std::int64_t e = block.num_edges();
    const auto bounds =
        block.num_dst < kParallelRowThreshold
            ? std::vector<std::int64_t>{0, block.num_dst}
            : balanced_row_chunks(block.indptr,
                                  balanced_chunk_count(block.num_dst));
    const auto chunks = static_cast<std::int64_t>(bounds.size()) - 1;
#pragma omp parallel for schedule(dynamic, 1) \
    if (block.num_dst >= kParallelRowThreshold)
    for (std::int64_t c = 0; c < chunks; ++c) {
      spmm_rows<true>(indptr, indices, values, px, po, d, e,
                      bounds[static_cast<std::size_t>(c)],
                      bounds[static_cast<std::size_t>(c) + 1]);
    }
  }
  const Block* b = &block;
  return make_node(
      std::move(out), {x},
      [x, b, d](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* __restrict__ g = node.grad.data();
        float* __restrict__ dst = xg.data();
        const auto* __restrict__ indptr = b->indptr.data();
        const auto* __restrict__ indices = b->indices.data();
        const auto* __restrict__ values = b->values.data();
        const std::int64_t num_src = b->num_src();
        // Race-free parallel scatter: blocks carry no transpose, so each
        // thread walks every edge but only writes the source rows in its
        // own range. Every thread re-reads all E indices, so the useful
        // work per thread is ~d row-update lanes — clamp the team to d
        // threads or the redundant index walk dominates.
#ifdef _OPENMP
        const int scatter_threads = static_cast<int>(std::min<std::int64_t>(
            omp_get_max_threads(), std::max<std::int64_t>(d, 1)));
#else
        const int scatter_threads = 1;
#endif
#pragma omp parallel num_threads(scatter_threads) \
    if (b->num_edges() * d >= 1 << 16)
        {
          std::int64_t lo = 0, hi = num_src;
#ifdef _OPENMP
          const std::int64_t t = omp_get_thread_num();
          const std::int64_t nt = omp_get_num_threads();
          lo = num_src * t / nt;
          hi = num_src * (t + 1) / nt;
#endif
          for (std::int64_t i = 0; i < b->num_dst; ++i) {
            const float* __restrict__ grow = g + i * d;
            for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
              const std::int64_t s = indices[e];
              if (s < lo || s >= hi) continue;
              float* __restrict__ xrow = dst + s * d;
              const float w = values[e];
#pragma omp simd
              for (std::int64_t j = 0; j < d; ++j) xrow[j] += w * grow[j];
            }
          }
        }
      },
      "block_spmm");
}

Value narrow_rows(const Value& x, std::int64_t rows) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 && rows >= 0 &&
                      rows <= x->value.shape(0),
                  "narrow_rows out of range");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::empty({rows, d});
  std::memcpy(out.data(), x->value.data(),
              static_cast<std::size_t>(rows * d) * sizeof(float));
  return make_node(
      std::move(out), {x},
      [x, rows, d](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        float* __restrict__ dst = xg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::int64_t i = 0; i < rows * d; ++i) dst[i] += g[i];
      },
      "narrow_rows");
}

Value gather_rows(const Value& features,
                  std::span<const std::int64_t> row_ids) {
  GSOUP_CHECK_MSG(features->value.rank() == 2, "gather_rows needs rank-2");
  const std::int64_t d = features->value.shape(1);
  const auto m = static_cast<std::int64_t>(row_ids.size());
  Tensor out = Tensor::empty({m, d});
  const float* __restrict__ src = features->value.data();
  float* __restrict__ dst = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    GSOUP_DCHECK(row_ids[i] >= 0 && row_ids[i] < features->value.shape(0));
    std::memcpy(dst + i * d, src + row_ids[i] * d,
                static_cast<std::size_t>(d) * sizeof(float));
  }
  std::vector<std::int64_t> ids(row_ids.begin(), row_ids.end());
  return make_node(
      std::move(out), {features},
      [features, ids = std::move(ids), d](Node& node) {
        if (!features->requires_grad) return;
        Tensor& fg = features->ensure_grad();
        float* __restrict__ dstg = fg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::size_t i = 0; i < ids.size(); ++i) {
          float* row = dstg + ids[i] * d;
          const float* grow = g + static_cast<std::int64_t>(i) * d;
          for (std::int64_t j = 0; j < d; ++j) row[j] += grow[j];
        }
      },
      "gather_rows");
}

}  // namespace gsoup::ag
