#include "ag/graph_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace gsoup::ag {

namespace {

constexpr std::int64_t kParallelRowThreshold = 64;

/// Y += A · X for weighted CSR A (in-edge convention). Row-parallel.
void spmm_kernel(const Csr& a, const Tensor& x, Tensor& y) {
  const std::int64_t n = a.num_nodes;
  const std::int64_t d = x.shape(1);
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const auto* __restrict__ indptr = a.indptr.data();
  const auto* __restrict__ indices = a.indices.data();
  const auto* __restrict__ values = a.values.data();
#pragma omp parallel for schedule(dynamic, 64) \
    if (n >= kParallelRowThreshold)
  for (std::int64_t i = 0; i < n; ++i) {
    float* __restrict__ yrow = py + i * d;
    for (std::int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      const float w = values[e];
      const float* __restrict__ xrow = px + indices[e] * d;
      for (std::int64_t j = 0; j < d; ++j) yrow[j] += w * xrow[j];
    }
  }
}

}  // namespace

Value spmm(const Csr& a, const Csr& a_transpose, const Value& x) {
  GSOUP_CHECK_MSG(a.weighted() && a_transpose.weighted(),
                  "spmm operands must carry edge values");
  GSOUP_CHECK_MSG(x->value.rank() == 2 && x->value.shape(0) == a.num_nodes,
                  "spmm: X shape " << x->value.shape_str()
                                   << " incompatible with graph of "
                                   << a.num_nodes << " nodes");
  Tensor out = Tensor::zeros({a.num_nodes, x->value.shape(1)});
  spmm_kernel(a, x->value, out);
  const Csr* at = &a_transpose;
  return make_node(
      std::move(out), {x},
      [x, at](Node& node) {
        if (!x->requires_grad) return;
        spmm_kernel(*at, node.grad, x->ensure_grad());
      },
      "spmm");
}

Value gat_attention(const Csr& graph, const CsrTranspose& graph_t,
                    const Value& h, const Value& score_dst,
                    const Value& score_src, std::int64_t heads, float slope) {
  const std::int64_t n = graph.num_nodes;
  const std::int64_t e_count = graph.num_edges();
  GSOUP_CHECK_MSG(h->value.rank() == 2 && h->value.shape(0) == n &&
                      h->value.shape(1) % heads == 0,
                  "gat_attention: bad H shape " << h->value.shape_str());
  GSOUP_CHECK_MSG(score_dst->value.shape(0) == n &&
                      score_dst->value.shape(1) == heads &&
                      score_src->value.shape(0) == n &&
                      score_src->value.shape(1) == heads,
                  "gat_attention: bad score shapes");
  const std::int64_t d = h->value.shape(1) / heads;

  // ---- Forward: per-(dst, head) edge softmax, then weighted aggregate. ---
  Tensor alpha = Tensor::empty({e_count, heads});
  Tensor out = Tensor::zeros({n, heads * d});
  {
    const float* __restrict__ sl = score_dst->value.data();
    const float* __restrict__ sr = score_src->value.data();
    const float* __restrict__ ph = h->value.data();
    float* __restrict__ pa = alpha.data();
    float* __restrict__ po = out.data();
    const auto* __restrict__ indptr = graph.indptr.data();
    const auto* __restrict__ indices = graph.indices.data();
#pragma omp parallel for schedule(dynamic, 64) \
    if (n >= kParallelRowThreshold)
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t begin = indptr[i], end = indptr[i + 1];
      for (std::int64_t head = 0; head < heads; ++head) {
        // Numerically stable softmax over LeakyReLU(sl_i + sr_j).
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t e = begin; e < end; ++e) {
          const float z = sl[i * heads + head] +
                          sr[indices[e] * heads + head];
          const float act = z > 0.0f ? z : slope * z;
          pa[e * heads + head] = act;
          mx = std::max(mx, act);
        }
        float denom = 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          const float v = std::exp(pa[e * heads + head] - mx);
          pa[e * heads + head] = v;
          denom += v;
        }
        const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
        for (std::int64_t e = begin; e < end; ++e) {
          pa[e * heads + head] *= inv;
        }
        // Aggregate: out[i, head*d:] = sum_e alpha_e * H[src_e, head*d:].
        float* __restrict__ orow = po + i * heads * d + head * d;
        for (std::int64_t e = begin; e < end; ++e) {
          const float a = pa[e * heads + head];
          const float* __restrict__ hrow =
              ph + indices[e] * heads * d + head * d;
          for (std::int64_t j = 0; j < d; ++j) orow[j] += a * hrow[j];
        }
      }
    }
  }

  const Csr* g = &graph;
  const CsrTranspose* gt = &graph_t;
  return make_node(
      std::move(out), {h, score_dst, score_src},
      [h, score_dst, score_src, alpha, g, gt, heads, d, slope](Node& node) {
        const std::int64_t nn = g->num_nodes;
        const std::int64_t ee = g->num_edges();
        const float* __restrict__ grad_out = node.grad.data();
        const float* __restrict__ pa = alpha.data();
        const float* __restrict__ ph = h->value.data();
        const float* __restrict__ sl = score_dst->value.data();
        const float* __restrict__ sr = score_src->value.data();

        // Pass 1 (parallel over dst): softmax + leaky-relu backward per
        // (dst, head); writes dz per edge, accumulates dscore_dst.
        Tensor dz = Tensor::zeros({ee, heads});
        float* __restrict__ pdz = dz.data();
        const bool need_sl = score_dst->requires_grad;
        float* __restrict__ pslg =
            need_sl ? score_dst->ensure_grad().data() : nullptr;
        const auto* __restrict__ indptr = g->indptr.data();
        const auto* __restrict__ indices = g->indices.data();
#pragma omp parallel for schedule(dynamic, 64) \
    if (nn >= kParallelRowThreshold)
        for (std::int64_t i = 0; i < nn; ++i) {
          const std::int64_t begin = indptr[i], end = indptr[i + 1];
          for (std::int64_t head = 0; head < heads; ++head) {
            const float* __restrict__ grow =
                grad_out + i * heads * d + head * d;
            // d_alpha_e = <dOut_i, H_src>; inner = Σ alpha * d_alpha.
            float inner = 0.0f;
            for (std::int64_t e = begin; e < end; ++e) {
              const float* __restrict__ hrow =
                  ph + indices[e] * heads * d + head * d;
              float dot = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) dot += grow[j] * hrow[j];
              pdz[e * heads + head] = dot;  // stash d_alpha temporarily
              inner += pa[e * heads + head] * dot;
            }
            float dsl_acc = 0.0f;
            for (std::int64_t e = begin; e < end; ++e) {
              const float a = pa[e * heads + head];
              const float de = a * (pdz[e * heads + head] - inner);
              const float z = sl[i * heads + head] +
                              sr[indices[e] * heads + head];
              const float dzv = de * (z > 0.0f ? 1.0f : slope);
              pdz[e * heads + head] = dzv;
              dsl_acc += dzv;
            }
            if (need_sl) pslg[i * heads + head] += dsl_acc;
          }
        }

        // Pass 2 (parallel over src via the transpose): scatter dz into
        // dscore_src and alpha·dOut into dH, race-free because each thread
        // owns one source row.
        const bool need_h = h->requires_grad;
        const bool need_sr = score_src->requires_grad;
        float* __restrict__ phg = need_h ? h->ensure_grad().data() : nullptr;
        float* __restrict__ psrg =
            need_sr ? score_src->ensure_grad().data() : nullptr;
        const auto* __restrict__ t_indptr = gt->graph.indptr.data();
        const auto* __restrict__ t_indices = gt->graph.indices.data();
        const auto* __restrict__ edge_map = gt->edge_map.data();
#pragma omp parallel for schedule(dynamic, 64) \
    if (nn >= kParallelRowThreshold)
        for (std::int64_t j = 0; j < nn; ++j) {
          for (std::int64_t te = t_indptr[j]; te < t_indptr[j + 1]; ++te) {
            const std::int64_t i = t_indices[te];   // dst of original edge
            const std::int64_t e = edge_map[te];    // original edge id
            for (std::int64_t head = 0; head < heads; ++head) {
              if (need_sr) {
                psrg[j * heads + head] += pdz[e * heads + head];
              }
              if (need_h) {
                const float a = pa[e * heads + head];
                const float* __restrict__ grow =
                    grad_out + i * heads * d + head * d;
                float* __restrict__ hgrow =
                    phg + j * heads * d + head * d;
                for (std::int64_t jj = 0; jj < d; ++jj) {
                  hgrow[jj] += a * grow[jj];
                }
              }
            }
          }
        }
      },
      "gat_attention");
}

Value block_spmm(const Block& block, const Value& x) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 &&
                      x->value.shape(0) == block.num_src(),
                  "block_spmm: X rows != block src count");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::zeros({block.num_dst, d});
  {
    const float* __restrict__ px = x->value.data();
    float* __restrict__ po = out.data();
    for (std::int64_t i = 0; i < block.num_dst; ++i) {
      float* __restrict__ orow = po + i * d;
      for (std::int64_t e = block.indptr[i]; e < block.indptr[i + 1]; ++e) {
        const float w = block.values[e];
        const float* __restrict__ xrow = px + block.indices[e] * d;
        for (std::int64_t j = 0; j < d; ++j) orow[j] += w * xrow[j];
      }
    }
  }
  const Block* b = &block;
  return make_node(
      std::move(out), {x},
      [x, b, d](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* __restrict__ g = node.grad.data();
        float* __restrict__ dst = xg.data();
        // Serial scatter (blocks are minibatch-sized).
        for (std::int64_t i = 0; i < b->num_dst; ++i) {
          const float* __restrict__ grow = g + i * d;
          for (std::int64_t e = b->indptr[i]; e < b->indptr[i + 1]; ++e) {
            float* __restrict__ xrow = dst + b->indices[e] * d;
            const float w = b->values[e];
            for (std::int64_t j = 0; j < d; ++j) xrow[j] += w * grow[j];
          }
        }
      },
      "block_spmm");
}

Value narrow_rows(const Value& x, std::int64_t rows) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 && rows >= 0 &&
                      rows <= x->value.shape(0),
                  "narrow_rows out of range");
  const std::int64_t d = x->value.shape(1);
  Tensor out = Tensor::empty({rows, d});
  std::memcpy(out.data(), x->value.data(),
              static_cast<std::size_t>(rows * d) * sizeof(float));
  return make_node(
      std::move(out), {x},
      [x, rows, d](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        float* __restrict__ dst = xg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::int64_t i = 0; i < rows * d; ++i) dst[i] += g[i];
      },
      "narrow_rows");
}

Value gather_rows(const Value& features,
                  std::span<const std::int64_t> row_ids) {
  GSOUP_CHECK_MSG(features->value.rank() == 2, "gather_rows needs rank-2");
  const std::int64_t d = features->value.shape(1);
  const auto m = static_cast<std::int64_t>(row_ids.size());
  Tensor out = Tensor::empty({m, d});
  const float* __restrict__ src = features->value.data();
  float* __restrict__ dst = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    GSOUP_DCHECK(row_ids[i] >= 0 && row_ids[i] < features->value.shape(0));
    std::memcpy(dst + i * d, src + row_ids[i] * d,
                static_cast<std::size_t>(d) * sizeof(float));
  }
  std::vector<std::int64_t> ids(row_ids.begin(), row_ids.end());
  return make_node(
      std::move(out), {features},
      [features, ids = std::move(ids), d](Node& node) {
        if (!features->requires_grad) return;
        Tensor& fg = features->ensure_grad();
        float* __restrict__ dstg = fg.data();
        const float* __restrict__ g = node.grad.data();
        for (std::size_t i = 0; i < ids.size(); ++i) {
          float* row = dstg + ids[i] * d;
          const float* grow = g + static_cast<std::int64_t>(i) * d;
          for (std::int64_t j = 0; j < d; ++j) row[j] += grow[j];
        }
      },
      "gather_rows");
}

}  // namespace gsoup::ag
