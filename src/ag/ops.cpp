#include "ag/ops.hpp"

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace gsoup::ag {

namespace {
/// a.grad += g (allocating on first touch). Shared by all backward rules.
void accumulate(const Value& parent, const Tensor& g) {
  if (parent->requires_grad) parent->ensure_grad().add_(g);
}
}  // namespace

Value matmul(const Value& a, const Value& b) {
  Tensor out = ops::matmul(a->value, b->value);
  return make_node(
      std::move(out), {a, b},
      [a, b](Node& node) {
        if (a->requires_grad) {
          // dA = dC · Bᵀ
          a->ensure_grad().add_(ops::matmul_nt(node.grad, b->value));
        }
        if (b->requires_grad) {
          // dB = Aᵀ · dC
          b->ensure_grad().add_(ops::matmul_tn(a->value, node.grad));
        }
      },
      "matmul");
}

Value add(const Value& a, const Value& b) {
  Tensor out = ops::add(a->value, b->value);
  return make_node(
      std::move(out), {a, b},
      [a, b](Node& node) {
        accumulate(a, node.grad);
        accumulate(b, node.grad);
      },
      "add");
}

Value add_bias(const Value& x, const Value& bias) {
  Tensor out = ops::add_row_broadcast(x->value, bias->value);
  return make_node(
      std::move(out), {x, bias},
      [x, bias](Node& node) {
        accumulate(x, node.grad);
        if (bias->requires_grad) {
          Tensor& bg = bias->ensure_grad();
          const std::int64_t m = node.grad.shape(0);
          const std::int64_t n = node.grad.shape(1);
          const float* g = node.grad.data();
          float* pb = bg.data();
          for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) pb[j] += g[i * n + j];
          }
        }
      },
      "add_bias");
}

Value scale(const Value& x, float s) {
  Tensor out = ops::scale(x->value, s);
  return make_node(
      std::move(out), {x},
      [x, s](Node& node) {
        if (x->requires_grad) x->ensure_grad().add_(node.grad, s);
      },
      "scale");
}

Value relu(const Value& x) {
  Tensor out = ops::relu(x->value);
  return make_node(
      std::move(out), {x},
      [x](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* xv = x->value.data();
        const float* g = node.grad.data();
        float* dst = xg.data();
        const std::int64_t n = node.grad.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          if (xv[i] > 0.0f) dst[i] += g[i];
        }
      },
      "relu");
}

Value elu(const Value& x) {
  Tensor out = ops::elu(x->value);
  // Save the output: d/dx elu(x) = x>0 ? 1 : elu(x)+1.
  Tensor saved = out;
  return make_node(
      std::move(out), {x},
      [x, saved](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* xv = x->value.data();
        const float* ov = saved.data();
        const float* g = node.grad.data();
        float* dst = xg.data();
        const std::int64_t n = node.grad.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          dst[i] += g[i] * (xv[i] > 0.0f ? 1.0f : ov[i] + 1.0f);
        }
      },
      "elu");
}

Value leaky_relu(const Value& x, float slope) {
  Tensor out = ops::leaky_relu(x->value, slope);
  return make_node(
      std::move(out), {x},
      [x, slope](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* xv = x->value.data();
        const float* g = node.grad.data();
        float* dst = xg.data();
        const std::int64_t n = node.grad.numel();
        for (std::int64_t i = 0; i < n; ++i) {
          dst[i] += g[i] * (xv[i] > 0.0f ? 1.0f : slope);
        }
      },
      "leaky_relu");
}

Value dropout(const Value& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  GSOUP_CHECK_MSG(p < 1.0f, "dropout probability must be < 1");
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  Tensor mask = Tensor::empty(x->value.shape());
  {
    float* pm = mask.data();
    const std::int64_t n = mask.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      pm[i] = rng.bernoulli(keep) ? inv_keep : 0.0f;
    }
  }
  Tensor out = ops::mul(x->value, mask);
  return make_node(
      std::move(out), {x},
      [x, mask](Node& node) {
        if (x->requires_grad) {
          x->ensure_grad().add_(ops::mul(node.grad, mask));
        }
      },
      "dropout");
}

Value head_mean(const Value& x, std::int64_t heads) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 && heads >= 1 &&
                      x->value.shape(1) % heads == 0,
                  "head_mean: bad shape " << x->value.shape_str()
                                          << " for heads=" << heads);
  const std::int64_t n = x->value.shape(0);
  const std::int64_t d = x->value.shape(1) / heads;
  const float inv = 1.0f / static_cast<float>(heads);
  Tensor out = Tensor::zeros({n, d});
  {
    const float* px = x->value.data();
    float* po = out.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t h = 0; h < heads; ++h) {
        const float* row = px + (i * heads + h) * d;
        float* orow = po + i * d;
        for (std::int64_t j = 0; j < d; ++j) orow[j] += inv * row[j];
      }
    }
  }
  return make_node(
      std::move(out), {x},
      [x, heads, n, d, inv](Node& node) {
        if (!x->requires_grad) return;
        Tensor& xg = x->ensure_grad();
        const float* g = node.grad.data();
        float* dst = xg.data();
        for (std::int64_t i = 0; i < n; ++i) {
          const float* grow = g + i * d;
          for (std::int64_t h = 0; h < heads; ++h) {
            float* drow = dst + (i * heads + h) * d;
            for (std::int64_t j = 0; j < d; ++j) drow[j] += inv * grow[j];
          }
        }
      },
      "head_mean");
}

Value vec_softmax(const Value& x) {
  Tensor out = ops::vec_softmax(x->value);
  Tensor saved = out;
  return make_node(
      std::move(out), {x},
      [x, saved](Node& node) {
        if (!x->requires_grad) return;
        // dxi = si * (gi - Σ_j gj sj)
        const float* s = saved.data();
        const float* g = node.grad.data();
        const std::int64_t n = saved.numel();
        float inner = 0.0f;
        for (std::int64_t j = 0; j < n; ++j) inner += g[j] * s[j];
        Tensor& xg = x->ensure_grad();
        float* dst = xg.data();
        for (std::int64_t i = 0; i < n; ++i) {
          dst[i] += s[i] * (g[i] - inner);
        }
      },
      "vec_softmax");
}

Value per_head_dot(const Value& x, const Value& a, std::int64_t heads) {
  GSOUP_CHECK_MSG(x->value.rank() == 2 && a->value.rank() == 1 &&
                      x->value.shape(1) == a->value.shape(0) &&
                      heads >= 1 && x->value.shape(1) % heads == 0,
                  "per_head_dot: bad shapes " << x->value.shape_str()
                                              << " / "
                                              << a->value.shape_str());
  const std::int64_t n = x->value.shape(0);
  const std::int64_t d = x->value.shape(1) / heads;
  Tensor out = Tensor::empty({n, heads});
  ops::per_head_dot_into(x->value, a->value, heads, out);
  return make_node(
      std::move(out), {x, a},
      [x, a, heads, n, d](Node& node) {
        const float* __restrict__ g = node.grad.data();
        const float* __restrict__ px = x->value.data();
        const float* __restrict__ pa = a->value.data();
        if (x->requires_grad) {
          float* __restrict__ dst = x->ensure_grad().data();
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t h = 0; h < heads; ++h) {
              const float gv = g[i * heads + h];
              const float* arow = pa + h * d;
              float* drow = dst + i * heads * d + h * d;
              for (std::int64_t j = 0; j < d; ++j) drow[j] += gv * arow[j];
            }
          }
        }
        if (a->requires_grad) {
          float* __restrict__ dst = a->ensure_grad().data();
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t h = 0; h < heads; ++h) {
              const float gv = g[i * heads + h];
              const float* xrow = px + i * heads * d + h * d;
              float* drow = dst + h * d;
              for (std::int64_t j = 0; j < d; ++j) drow[j] += gv * xrow[j];
            }
          }
        }
      },
      "per_head_dot");
}

Value linear_combination(std::span<const Tensor> ingredients,
                         const Value& weights) {
  GSOUP_CHECK_MSG(!ingredients.empty(), "linear_combination needs operands");
  GSOUP_CHECK_MSG(weights->value.rank() == 1 &&
                      weights->value.shape(0) ==
                          static_cast<std::int64_t>(ingredients.size()),
                  "weights shape " << weights->value.shape_str()
                                   << " != ingredient count "
                                   << ingredients.size());
  for (const auto& t : ingredients) {
    GSOUP_CHECK_MSG(t.shape() == ingredients.front().shape(),
                    "ingredient shape mismatch");
  }

  const auto count = static_cast<std::int64_t>(ingredients.size());
  Tensor out = Tensor::zeros(ingredients.front().shape());
  const float* w = weights->value.data();
  for (std::int64_t i = 0; i < count; ++i) {
    out.add_(ingredients[i], w[i]);
  }

  // Keep the ingredient tensors alive in the closure (they are shallow
  // handles onto shared storage, so this is cheap).
  std::vector<Tensor> held(ingredients.begin(), ingredients.end());
  return make_node(
      std::move(out), {weights},
      [weights, held = std::move(held)](Node& node) {
        if (!weights->requires_grad) return;
        Tensor& wg = weights->ensure_grad();
        float* dst = wg.data();
        for (std::size_t i = 0; i < held.size(); ++i) {
          dst[i] += ops::dot(node.grad, held[i]);
        }
      },
      "linear_combination");
}

Value sum(const Value& x) {
  Tensor out = Tensor::full({1}, ops::sum(x->value));
  return make_node(
      std::move(out), {x},
      [x](Node& node) {
        if (x->requires_grad) {
          x->ensure_grad().add_(
              Tensor::full(x->value.shape(), node.grad.at(0)));
        }
      },
      "sum");
}

}  // namespace gsoup::ag
