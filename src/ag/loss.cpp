#include "ag/loss.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace gsoup::ag {

Value cross_entropy(const Value& logits, std::span<const std::int32_t> labels,
                    std::span<const std::int64_t> nodes) {
  GSOUP_CHECK_MSG(logits->value.rank() == 2, "cross_entropy needs [n,c]");
  GSOUP_CHECK_MSG(!nodes.empty(), "cross_entropy needs a non-empty mask");
  const std::int64_t c = logits->value.shape(1);
  const auto m = static_cast<std::int64_t>(nodes.size());

  // Save softmax probabilities of the masked rows for the backward pass.
  Tensor probs = Tensor::empty({m, c});
  double loss_acc = 0.0;
  {
    const float* __restrict__ px = logits->value.data();
    float* __restrict__ pp = probs.data();
#pragma omp parallel for schedule(static) reduction(+ : loss_acc) \
    if (m >= 256)
    for (std::int64_t k = 0; k < m; ++k) {
      const std::int64_t v = nodes[k];
      GSOUP_DCHECK(v >= 0 && v < n);
      const std::int32_t y = labels[v];
      GSOUP_DCHECK(y >= 0 && y < c);
      const float* row = px + v * c;
      float* prow = pp + k * c;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (std::int64_t j = 0; j < c; ++j) {
        prow[j] = std::exp(row[j] - mx);
        denom += prow[j];
      }
      const float inv = 1.0f / denom;
      for (std::int64_t j = 0; j < c; ++j) prow[j] *= inv;
      loss_acc += -(static_cast<double>(row[y]) - mx - std::log(denom));
    }
  }
  Tensor out =
      Tensor::full({1}, static_cast<float>(loss_acc / static_cast<double>(m)));

  std::vector<std::int64_t> node_copy(nodes.begin(), nodes.end());
  std::vector<std::int32_t> label_copy(labels.begin(), labels.end());
  return make_node(
      std::move(out), {logits},
      [logits, probs, node_copy = std::move(node_copy),
       label_copy = std::move(label_copy), c](Node& node) {
        if (!logits->requires_grad) return;
        const float upstream = node.grad.at(0);
        const float scale =
            upstream / static_cast<float>(node_copy.size());
        Tensor& xg = logits->ensure_grad();
        float* __restrict__ dst = xg.data();
        const float* __restrict__ pp = probs.data();
        for (std::size_t k = 0; k < node_copy.size(); ++k) {
          const std::int64_t v = node_copy[k];
          const std::int32_t y = label_copy[v];
          float* row = dst + v * c;
          const float* prow = pp + static_cast<std::int64_t>(k) * c;
          for (std::int64_t j = 0; j < c; ++j) {
            row[j] += scale * (prow[j] - (j == y ? 1.0f : 0.0f));
          }
        }
      },
      "cross_entropy");
}

}  // namespace gsoup::ag
