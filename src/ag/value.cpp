#include "ag/value.hpp"

#include <unordered_set>

#include "util/check.hpp"

namespace gsoup::ag {

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

Tensor& Node::ensure_grad() {
  if (!grad.defined()) grad = Tensor::zeros(value.shape());
  return grad;
}

bool grad_enabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

Value make_leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

Value constant(Tensor value) { return make_leaf(std::move(value), false); }

Value make_node(Tensor value, std::vector<Value> parents,
                std::function<void(Node&)> backward_fn, const char* op) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op = op;
  bool needs = false;
  if (t_grad_enabled) {
    for (const auto& p : parents) {
      if (p && p->requires_grad) {
        needs = true;
        break;
      }
    }
  }
  if (needs) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

void backward(const Value& root) {
  GSOUP_CHECK_MSG(root != nullptr, "backward on null value");
  GSOUP_CHECK_MSG(root->value.numel() == 1,
                  "backward requires a scalar root, got "
                      << root->value.shape_str());
  GSOUP_CHECK_MSG(root->requires_grad,
                  "backward root does not require grad (inference mode?)");

  // Iterative DFS post-order over the requires_grad subgraph.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack{{root.get(), 0}};
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent != nullptr && parent->requires_grad &&
          visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  root->ensure_grad().fill_(1.0f);
  // topo is post-order (children after parents pushed), so iterate in
  // reverse to visit each node before its parents.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) node->backward_fn(*node);
  }
}

}  // namespace gsoup::ag
