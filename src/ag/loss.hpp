// Masked softmax cross-entropy — the node-classification loss evaluated on
// a node subset (train mask for ingredient training; validation mask or a
// partition subgraph's validation mask for learned souping).
#pragma once

#include <cstdint>
#include <span>

#include "ag/value.hpp"

namespace gsoup::ag {

/// L = -(1/|nodes|) Σ_{v in nodes} log softmax(logits[v])[labels[v]].
/// Returns a scalar Value. `nodes` must be non-empty; labels are indexed by
/// absolute node id (same indexing as the logits rows).
Value cross_entropy(const Value& logits, std::span<const std::int32_t> labels,
                    std::span<const std::int64_t> nodes);

}  // namespace gsoup::ag
