// Tape-based reverse-mode automatic differentiation.
//
// A computation is a DAG of Nodes; each op allocates an output Node that
// remembers its parents and a closure that propagates the output gradient
// back to them. `backward()` runs a reverse topological sweep from a scalar
// loss. This engine powers both ingredient training (gradients to weights)
// and Learned Souping (gradients to interpolation logits, Eq. 4/6 of the
// paper).
//
// Inference mode (`NoGradGuard`) skips parent retention entirely, so
// intermediate activations free eagerly — forward-only algorithms (GIS
// evaluation sweeps) run at a fraction of the training-memory footprint,
// which is exactly the effect Fig. 4b measures.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace gsoup::ag {

class Node;
/// Shared handle to a node in the autodiff graph.
using Value = std::shared_ptr<Node>;

class Node {
 public:
  Tensor value;
  /// Gradient of the loss w.r.t. `value`; lazily allocated by backward().
  Tensor grad;
  bool requires_grad = false;
  std::vector<Value> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;
  /// Op name for diagnostics.
  const char* op = "leaf";

  /// Allocate (zeroed) grad storage on first use.
  Tensor& ensure_grad();
  /// Drop grad storage (between optimiser steps).
  void clear_grad() { grad = Tensor(); }
};

/// Is gradient recording enabled on this thread?
bool grad_enabled();

/// RAII guard disabling gradient recording (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Create a leaf node (trainable parameter when requires_grad).
Value make_leaf(Tensor value, bool requires_grad);

/// Create a constant node (never receives gradient).
Value constant(Tensor value);

/// Internal helper used by every op: wires parents/backward only when
/// recording is on and some parent needs grad.
Value make_node(Tensor value, std::vector<Value> parents,
                std::function<void(Node&)> backward_fn, const char* op);

/// Reverse-mode sweep from a scalar root (numel == 1). Accumulates into
/// the `grad` of every reachable node with requires_grad.
void backward(const Value& root);

}  // namespace gsoup::ag
