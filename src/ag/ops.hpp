// Differentiable dense ops. Each returns a new Value; backward rules
// accumulate (+=) into parent grads so diamond-shaped graphs work.
#pragma once

#include <span>

#include "ag/value.hpp"
#include "util/rng.hpp"

namespace gsoup::ag {

/// C = A · B (rank-2).
Value matmul(const Value& a, const Value& b);

/// Elementwise sum of two equal-shaped values.
Value add(const Value& a, const Value& b);

/// out[i,j] = x[i,j] + bias[j].
Value add_bias(const Value& x, const Value& bias);

/// out = s * x for a compile-time-constant scalar s.
Value scale(const Value& x, float s);

Value relu(const Value& x);
Value elu(const Value& x);
Value leaky_relu(const Value& x, float slope);

/// Inverted dropout: zero with probability p and scale survivors by
/// 1/(1-p). Identity when `training` is false or p == 0.
Value dropout(const Value& x, float p, Rng& rng, bool training);

/// Mean over `heads` equal column groups: [n, heads*d] -> [n, d]. Used to
/// average multi-head GAT outputs at the final layer.
Value head_mean(const Value& x, std::int64_t heads);

/// Softmax over a rank-1 value (the souping interpolation logits).
Value vec_softmax(const Value& x);

/// Per-head inner product: s[i,h] = Σ_j x[i, h*d+j] · a[h*d+j], where
/// x is [n, heads*d] and a is rank-1 of length heads*d. Produces the GAT
/// attention scores aᵀ(Wh) without mixing parameters across heads.
Value per_head_dot(const Value& x, const Value& a, std::int64_t heads);

/// Weighted sum of constant tensors: out = Σ_i weights[i] * ingredients[i].
/// This is the soup-building op (Eq. 3): gradients flow to `weights` only
/// (dL/dw_i = <dOut, ingredient_i>); the ingredient tensors are frozen.
/// All ingredients must share a shape; weights is rank-1 of matching count.
Value linear_combination(std::span<const Tensor> ingredients,
                         const Value& weights);

/// Sum of all elements -> scalar. (Mainly for tests and regularisers.)
Value sum(const Value& x);

}  // namespace gsoup::ag
