#include "graph/locality.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace gsoup::graph {

const char* reorder_name(Reorder strategy) {
  switch (strategy) {
    case Reorder::kNone: return "none";
    case Reorder::kDegree: return "degree";
    case Reorder::kRcm: return "rcm";
  }
  return "?";
}

std::optional<Reorder> reorder_from_name(std::string_view name) {
  if (name == "none") return Reorder::kNone;
  if (name == "degree") return Reorder::kDegree;
  if (name == "rcm") return Reorder::kRcm;
  return std::nullopt;
}

bool Permutation::is_identity() const {
  for (std::int64_t i = 0; i < size(); ++i) {
    if (order[static_cast<std::size_t>(i)] != i) return false;
  }
  return true;
}

namespace {

void fill_rank(Permutation& p) {
  p.rank.resize(p.order.size());
  for (std::size_t i = 0; i < p.order.size(); ++i) {
    p.rank[static_cast<std::size_t>(p.order[i])] =
        static_cast<std::int32_t>(i);
  }
}

}  // namespace

Permutation identity_permutation(std::int64_t num_nodes) {
  Permutation p;
  p.order.resize(static_cast<std::size_t>(num_nodes));
  std::iota(p.order.begin(), p.order.end(), 0);
  p.rank = p.order;
  return p;
}

Permutation degree_permutation(const Csr& graph) {
  Permutation p = identity_permutation(graph.num_nodes);
  std::stable_sort(p.order.begin(), p.order.end(),
                   [&graph](std::int32_t a, std::int32_t b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  fill_rank(p);
  return p;
}

Permutation rcm_permutation(const Csr& graph) {
  const std::int64_t n = graph.num_nodes;
  Permutation p;
  p.order.reserve(static_cast<std::size_t>(n));
  // Component seeds in ascending-degree order (the classic pseudo-
  // peripheral heuristic, cheap version).
  std::vector<std::int32_t> seeds(static_cast<std::size_t>(n));
  std::iota(seeds.begin(), seeds.end(), 0);
  std::stable_sort(seeds.begin(), seeds.end(),
                   [&graph](std::int32_t a, std::int32_t b) {
                     return graph.degree(a) < graph.degree(b);
                   });
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> frontier;
  std::queue<std::int32_t> queue;
  for (const std::int32_t seed : seeds) {
    if (seen[static_cast<std::size_t>(seed)]) continue;
    seen[static_cast<std::size_t>(seed)] = 1;
    queue.push(seed);
    while (!queue.empty()) {
      const std::int32_t v = queue.front();
      queue.pop();
      p.order.push_back(v);
      frontier.clear();
      for (const std::int32_t s : graph.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(s)]) {
          seen[static_cast<std::size_t>(s)] = 1;
          frontier.push_back(s);
        }
      }
      std::sort(frontier.begin(), frontier.end(),
                [&graph](std::int32_t a, std::int32_t b) {
                  const auto da = graph.degree(a), db = graph.degree(b);
                  return da != db ? da < db : a < b;
                });
      for (const std::int32_t s : frontier) queue.push(s);
    }
  }
  std::reverse(p.order.begin(), p.order.end());
  fill_rank(p);
  return p;
}

Permutation make_permutation(const Csr& graph, Reorder strategy) {
  switch (strategy) {
    case Reorder::kNone: return identity_permutation(graph.num_nodes);
    case Reorder::kDegree: return degree_permutation(graph);
    case Reorder::kRcm: return rcm_permutation(graph);
  }
  return identity_permutation(graph.num_nodes);
}

Csr permute_csr(const Csr& csr, const Permutation& perm) {
  GSOUP_CHECK_MSG(perm.size() == csr.num_nodes,
                  "permute_csr: permutation over " << perm.size()
                                                   << " nodes, graph has "
                                                   << csr.num_nodes);
  const std::int64_t n = csr.num_nodes;
  Csr out;
  out.num_nodes = n;
  out.indptr.resize(static_cast<std::size_t>(n) + 1);
  out.indptr[0] = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    out.indptr[static_cast<std::size_t>(i) + 1] =
        out.indptr[static_cast<std::size_t>(i)] +
        csr.degree(perm.order[static_cast<std::size_t>(i)]);
  }
  out.indices.resize(csr.indices.size());
  if (csr.weighted()) out.values.resize(csr.values.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t old = perm.order[static_cast<std::size_t>(i)];
    std::int64_t w = out.indptr[static_cast<std::size_t>(i)];
    for (std::int64_t e = csr.indptr[static_cast<std::size_t>(old)];
         e < csr.indptr[static_cast<std::size_t>(old) + 1]; ++e, ++w) {
      out.indices[static_cast<std::size_t>(w)] =
          perm.rank[static_cast<std::size_t>(
              csr.indices[static_cast<std::size_t>(e)])];
      if (csr.weighted()) {
        out.values[static_cast<std::size_t>(w)] =
            csr.values[static_cast<std::size_t>(e)];
      }
    }
  }
  return out;
}

Tensor permute_rows(const Tensor& rows, const Permutation& perm) {
  GSOUP_CHECK_MSG(rows.rank() == 2 && rows.shape(0) == perm.size(),
                  "permute_rows: " << rows.shape_str() << " vs permutation of "
                                   << perm.size());
  Tensor out = Tensor::empty(rows.shape());
  ops::gather_rows_into(rows, perm.order, out);
  return out;
}

Tensor unpermute_rows(const Tensor& rows, const Permutation& perm) {
  GSOUP_CHECK_MSG(rows.rank() == 2 && rows.shape(0) == perm.size(),
                  "unpermute_rows: " << rows.shape_str()
                                     << " vs permutation of " << perm.size());
  Tensor out = Tensor::empty(rows.shape());
  ops::gather_rows_into(rows, perm.rank, out);
  return out;
}

BlockedCsr build_blocked_csr(const Csr& csr, bool force_wide) {
  BlockedCsr out;
  out.num_rows = csr.num_nodes;
  out.num_cols = csr.num_nodes;
  if (force_wide) out.num_cols = std::max(out.num_cols, kNarrowIndexLimit + 1);
  out.indptr = csr.indptr;
  out.values = csr.values;  // empty for structure-only (attention) layouts
  if (out.narrow()) {
    out.idx16.assign(csr.indices.begin(), csr.indices.end());
  } else {
    out.idx32 = csr.indices;
  }
  out.row_blocks = balanced_row_chunks(
      out.indptr, balanced_chunk_count(out.num_rows));
  return out;
}

namespace {

/// Counting-sort transpose shared by the Csr and span entry points. Edges
/// of result row s come out in ascending destination order — the same
/// per-source edge order a destination-major scatter visits, so gathers
/// over this layout see each row's contributions in the scatter's order.
/// (The float sequence still differs: the SpMM kernels split edges across
/// dual accumulators, so scatter/gather parity is to rounding, ~1e-5 —
/// not bit-exact.)
BlockedCsr blocked_transpose_impl(std::span<const std::int64_t> indptr,
                                  std::span<const std::int32_t> indices,
                                  std::span<const float> values,
                                  std::int64_t num_src, bool force_wide,
                                  bool with_epos) {
  const auto num_dst = static_cast<std::int64_t>(indptr.size()) - 1;
  const auto e = static_cast<std::int64_t>(indices.size());
  GSOUP_CHECK_MSG(values.empty() ||
                      static_cast<std::int64_t>(values.size()) == e,
                  "blocked transpose: values/indices size mismatch");
  GSOUP_CHECK_MSG(
      e <= std::numeric_limits<std::int32_t>::max(),
      "blocked transpose: edge count overflows 32-bit edge positions");
  BlockedCsr out;
  out.num_rows = num_src;
  out.num_cols = num_dst;
  if (force_wide) out.num_cols = std::max(out.num_cols, kNarrowIndexLimit + 1);
  out.indptr.assign(static_cast<std::size_t>(num_src) + 1, 0);
  for (std::int64_t k = 0; k < e; ++k) {
    ++out.indptr[static_cast<std::size_t>(indices[static_cast<std::size_t>(
                     k)]) +
                 1];
  }
  for (std::int64_t s = 0; s < num_src; ++s) {
    out.indptr[static_cast<std::size_t>(s) + 1] +=
        out.indptr[static_cast<std::size_t>(s)];
  }
  const bool narrow = out.narrow();
  if (narrow) {
    out.idx16.resize(static_cast<std::size_t>(e));
  } else {
    out.idx32.resize(static_cast<std::size_t>(e));
  }
  if (with_epos) out.epos.resize(static_cast<std::size_t>(e));
  if (!values.empty()) out.values.resize(static_cast<std::size_t>(e));
  std::vector<std::int64_t> cursor(out.indptr.begin(), out.indptr.end() - 1);
  for (std::int64_t i = 0; i < num_dst; ++i) {
    for (std::int64_t k = indptr[static_cast<std::size_t>(i)];
         k < indptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto s =
          static_cast<std::size_t>(indices[static_cast<std::size_t>(k)]);
      const auto slot = static_cast<std::size_t>(cursor[s]++);
      if (narrow) {
        out.idx16[slot] = static_cast<std::uint16_t>(i);
      } else {
        out.idx32[slot] = static_cast<std::int32_t>(i);
      }
      if (with_epos) out.epos[slot] = static_cast<std::int32_t>(k);
      if (!values.empty()) out.values[slot] = values[static_cast<std::size_t>(k)];
    }
  }
  out.row_blocks =
      balanced_row_chunks(out.indptr, balanced_chunk_count(num_src));
  return out;
}

}  // namespace

BlockedCsr build_blocked_transpose(const Csr& csr, bool force_wide,
                                   bool with_epos) {
  return blocked_transpose_impl(csr.indptr, csr.indices, csr.values,
                                csr.num_nodes, force_wide, with_epos);
}

BlockedCsr build_blocked_transpose_spans(
    std::span<const std::int64_t> indptr,
    std::span<const std::int32_t> indices, std::span<const float> values,
    std::int64_t num_src, bool force_wide, bool with_epos) {
  return blocked_transpose_impl(indptr, indices, values, num_src, force_wide,
                                with_epos);
}

GraphPlan::GraphPlan(const Csr& graph, Reorder strategy)
    : strategy_(strategy), perm_(make_permutation(graph, strategy)) {
  graph_ = active() ? permute_csr(graph, perm_) : graph;
}

Csr GraphPlan::apply(const Csr& csr) const {
  return active() ? permute_csr(csr, perm_) : csr;
}

Dataset GraphPlan::apply(const Dataset& data) const {
  GSOUP_CHECK_MSG(data.num_nodes() == num_nodes() &&
                      data.num_edges() == graph_.num_edges(),
                  "GraphPlan::apply: dataset graph ("
                      << data.num_nodes() << " nodes, " << data.num_edges()
                      << " edges) does not match the plan's source graph");
  if (!active()) return data;
  Dataset out;
  out.name = data.name;
  // The plan was built from this dataset's graph (checked above), so its
  // already-permuted structure is reused instead of permuting again.
  out.graph = graph_;
  out.features = graph::permute_rows(data.features, perm_);
  out.num_classes = data.num_classes;
  const auto n = static_cast<std::size_t>(num_nodes());
  out.labels.resize(n);
  out.train_mask.resize(n);
  out.val_mask.resize(n);
  out.test_mask.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto old = static_cast<std::size_t>(perm_.order[i]);
    out.labels[i] = data.labels[old];
    out.train_mask[i] = data.train_mask[old];
    out.val_mask[i] = data.val_mask[old];
    out.test_mask[i] = data.test_mask[old];
  }
  return out;
}

Tensor GraphPlan::permute_rows(const Tensor& rows) const {
  return active() ? graph::permute_rows(rows, perm_) : rows;
}

Tensor GraphPlan::unpermute_rows(const Tensor& rows) const {
  return active() ? graph::unpermute_rows(rows, perm_) : rows;
}

void GraphPlan::unpermute_rows_into(const Tensor& rows, Tensor& out) const {
  if (!active()) {
    out.copy_(rows);
    return;
  }
  ops::gather_rows_into(rows, perm_.rank, out);
}

}  // namespace gsoup::graph
