// Adjacency normalisations used by the GNN layers.
//
// GCN uses the symmetric normalisation D̃^{-1/2} Ã D̃^{-1/2} (Kipf &
// Welling); GraphSAGE's mean aggregator is the row normalisation D^{-1} A.
// Both return a *weighted copy* of the structure — the raw CSR stays
// unweighted so several layers can share it.
#pragma once

#include "graph/csr.hpp"

namespace gsoup {

/// Fill `values` with symmetric GCN weights 1/sqrt(d_i * d_j) per edge
/// (j -> i), where degrees are in-degrees of the (self-loop-augmented)
/// graph. The input graph is expected to already contain self loops.
Csr gcn_normalize(const Csr& graph);

/// Fill `values` with 1/d_i for every in-edge of node i (mean aggregation).
/// Isolated nodes get zero rows.
Csr row_normalize(const Csr& graph);

}  // namespace gsoup
