// Node-classification dataset container: graph + features + labels +
// train/val/test masks. This is the only interface the training and
// souping code sees, which is what makes the synthetic OGB-style
// substitution (DESIGN.md §1) transparent to the algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace gsoup {

/// Which split a node belongs to.
enum class Split : std::uint8_t { kTrain = 0, kVal = 1, kTest = 2 };

struct Dataset {
  std::string name;
  Csr graph;                       ///< symmetrised, with self loops
  Tensor features;                 ///< [num_nodes, feature_dim]
  std::vector<std::int32_t> labels;  ///< size num_nodes, in [0, num_classes)
  std::int64_t num_classes = 0;
  std::vector<std::uint8_t> train_mask;  ///< size num_nodes, 0/1
  std::vector<std::uint8_t> val_mask;
  std::vector<std::uint8_t> test_mask;

  std::int64_t num_nodes() const { return graph.num_nodes; }
  std::int64_t num_edges() const { return graph.num_edges(); }
  std::int64_t feature_dim() const { return features.shape(1); }

  const std::vector<std::uint8_t>& mask(Split split) const;
  /// Node ids belonging to a split, ascending.
  std::vector<std::int64_t> split_nodes(Split split) const;
  std::int64_t split_size(Split split) const;

  /// Consistency validation (sizes, label range, mask disjointness).
  void validate() const;
};

/// Human-readable summary line matching Table I's columns.
std::string dataset_summary(const Dataset& data);

}  // namespace gsoup
