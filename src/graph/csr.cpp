#include "graph/csr.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gsoup {

void Csr::validate() const {
  GSOUP_CHECK_MSG(num_nodes >= 0, "negative node count");
  GSOUP_CHECK_MSG(static_cast<std::int64_t>(indptr.size()) == num_nodes + 1,
                  "indptr size " << indptr.size() << " != num_nodes+1");
  GSOUP_CHECK_MSG(indptr.front() == 0, "indptr must start at 0");
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    GSOUP_CHECK_MSG(indptr[i] <= indptr[i + 1],
                    "indptr not monotone at node " << i);
  }
  GSOUP_CHECK_MSG(indptr.back() == num_edges(),
                  "indptr end " << indptr.back() << " != num_edges "
                                << num_edges());
  for (const auto j : indices) {
    GSOUP_CHECK_MSG(j >= 0 && j < num_nodes, "edge endpoint out of range");
  }
  GSOUP_CHECK_MSG(values.empty() || static_cast<std::int64_t>(values.size()) ==
                                        num_edges(),
                  "values size mismatch");
}

bool Csr::is_symmetric() const {
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    for (const auto j : neighbors(i)) {
      const auto nb = neighbors(j);
      if (!std::binary_search(nb.begin(), nb.end(),
                              static_cast<std::int32_t>(i))) {
        return false;
      }
    }
  }
  return true;
}

CsrTranspose Csr::transpose() const {
  CsrTranspose out;
  Csr& t = out.graph;
  t.num_nodes = num_nodes;
  t.indptr.assign(static_cast<std::size_t>(num_nodes) + 1, 0);

  // Count out-degrees, then prefix-sum into indptr (classic two-pass CSR
  // transpose).
  for (const auto j : indices) ++t.indptr[static_cast<std::size_t>(j) + 1];
  for (std::int64_t i = 0; i < num_nodes; ++i) t.indptr[i + 1] += t.indptr[i];

  t.indices.resize(indices.size());
  out.edge_map.resize(indices.size());
  if (!values.empty()) t.values.resize(values.size());

  std::vector<std::int64_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
  for (std::int64_t dst = 0; dst < num_nodes; ++dst) {
    for (std::int64_t e = indptr[dst]; e < indptr[dst + 1]; ++e) {
      const std::int32_t src = indices[e];
      const std::int64_t pos = cursor[src]++;
      t.indices[pos] = static_cast<std::int32_t>(dst);
      out.edge_map[pos] = e;
      if (!values.empty()) t.values[pos] = values[e];
    }
  }
  return out;
}

}  // namespace gsoup
