// Induced-subgraph extraction.
//
// Used by Partition Learned Souping (Alg. 4): the union of R selected
// partitions induces a subgraph that *keeps the cut edges between selected
// partitions* ("preserving the edges cut during partitioning"); only edges
// to unselected partitions are dropped. Also used by tests and the
// minibatch pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dataset.hpp"

namespace gsoup {

/// An induced subgraph of a parent dataset, with the id mapping retained.
struct Subgraph {
  Dataset data;                       ///< relabelled, self-contained dataset
  std::vector<std::int64_t> origin;   ///< new node id -> parent node id
};

/// Build the subgraph induced by `nodes` (must be sorted, unique, in range).
/// Features, labels and split masks are carried over; edges survive iff
/// both endpoints are selected.
Subgraph induced_subgraph(const Dataset& parent,
                          std::span<const std::int64_t> nodes);

}  // namespace gsoup
