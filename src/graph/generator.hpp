// Synthetic node-classification dataset generator.
//
// Stands in for the paper's OGB downloads (Flickr, ogbn-arxiv, Reddit,
// ogbn-products), which are not available offline. The generator is a
// degree-heterogeneous stochastic block model: labels define communities,
// edges connect within-community with probability `homophily`, node
// degrees follow a lognormal propensity, and features are noisy class
// centroids. Each paper dataset has a preset matching its class count,
// density, split ratios and difficulty regime (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dataset.hpp"

namespace gsoup {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t num_nodes = 1000;
  double avg_degree = 10.0;   ///< mean *undirected* degree
  std::int64_t num_classes = 7;
  std::int64_t feature_dim = 64;
  /// Probability that an edge's second endpoint is drawn from the same
  /// class as the first (graph homophily; higher = easier for GNNs).
  double homophily = 0.7;
  /// Stddev of Gaussian feature noise around class centroids (higher =
  /// harder for feature-based classification).
  double feature_noise = 1.0;
  /// Lognormal sigma of the degree propensity (0 = near-regular).
  double degree_sigma = 0.8;
  /// Fraction of nodes whose observed label is flipped to a random class
  /// after generation — models intrinsic class ambiguity and sets an
  /// accuracy ceiling of ≈ (1-p) + p/C on dense, easy graphs (the regime
  /// of Reddit's ~95% ceiling).
  double label_noise = 0.0;
  double train_frac = 0.6;
  double val_frac = 0.2;  ///< remainder is test
  std::uint64_t seed = 1;
};

/// Generate a dataset from the spec. Deterministic for a fixed spec.
Dataset generate_dataset(const SyntheticSpec& spec);

/// Paper dataset presets (Table I), scaled for CPU by `scale` (1.0 = the
/// repo's default CPU-sized graphs; the paper-sized graphs would be
/// scale ≈ 20-150 depending on the dataset).
SyntheticSpec flickr_like_spec(double scale = 1.0);
SyntheticSpec arxiv_like_spec(double scale = 1.0);
SyntheticSpec reddit_like_spec(double scale = 1.0);
SyntheticSpec products_like_spec(double scale = 1.0);

/// All four presets in paper order (Flickr, arxiv, Reddit, products).
std::vector<SyntheticSpec> paper_dataset_specs(double scale = 1.0);

}  // namespace gsoup
