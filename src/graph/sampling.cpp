#include "graph/sampling.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/locality.hpp"
#include "util/check.hpp"

namespace gsoup {

namespace {

/// Sample one block: dst = seeds, srcs = dsts ∪ sampled neighbours.
Block sample_one(const Csr& graph, std::span<const std::int64_t> seeds,
                 std::int64_t fanout, Rng& rng) {
  Block block;
  block.num_dst = static_cast<std::int64_t>(seeds.size());
  block.src_nodes.assign(seeds.begin(), seeds.end());
  block.indptr.assign(seeds.size() + 1, 0);

  std::unordered_map<std::int64_t, std::int32_t> local;
  local.reserve(seeds.size() * 4);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    local.emplace(seeds[i], static_cast<std::int32_t>(i));
  }
  auto local_id = [&](std::int64_t global) {
    const auto [it, inserted] = local.emplace(
        global, static_cast<std::int32_t>(block.src_nodes.size()));
    if (inserted) block.src_nodes.push_back(global);
    return it->second;
  };

  std::vector<std::int32_t> scratch;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto nb = graph.neighbors(seeds[i]);
    const auto deg = static_cast<std::int64_t>(nb.size());
    if (fanout < 0 || deg <= fanout) {
      for (const auto j : nb) block.indices.push_back(local_id(j));
    } else {
      // Floyd's algorithm: sample `fanout` distinct positions from [0, deg).
      scratch.clear();
      for (std::int64_t k = deg - fanout; k < deg; ++k) {
        const auto r = static_cast<std::int32_t>(
            rng.uniform_int(static_cast<std::uint64_t>(k) + 1));
        if (std::find(scratch.begin(), scratch.end(), r) == scratch.end()) {
          scratch.push_back(r);
        } else {
          scratch.push_back(static_cast<std::int32_t>(k));
        }
      }
      for (const auto pos : scratch) block.indices.push_back(local_id(nb[pos]));
    }
    block.indptr[i + 1] = static_cast<std::int64_t>(block.indices.size());
  }

  // Mean-aggregation weights over the *sampled* degree (GraphSAGE).
  block.values.resize(block.indices.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::int64_t deg = block.indptr[i + 1] - block.indptr[i];
    const float w = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
    for (std::int64_t e = block.indptr[i]; e < block.indptr[i + 1]; ++e) {
      block.values[e] = w;
    }
  }
  return block;
}

}  // namespace

std::vector<Block> sample_blocks(const Csr& graph,
                                 std::span<const std::int64_t> seeds,
                                 std::span<const std::int64_t> fanouts,
                                 Rng& rng, BlockTranspose transpose) {
  GSOUP_CHECK_MSG(!seeds.empty(), "sample_blocks needs seeds");
  GSOUP_CHECK_MSG(!fanouts.empty(), "sample_blocks needs fanouts");
  for (const auto s : seeds) {
    GSOUP_CHECK_MSG(s >= 0 && s < graph.num_nodes, "seed out of range");
  }

  // Build outermost layer first (the classification layer's dsts are the
  // seeds), then walk inwards; return input-most layer first.
  std::vector<Block> reversed;
  std::vector<std::int64_t> frontier(seeds.begin(), seeds.end());
  for (auto it = fanouts.rbegin(); it != fanouts.rend(); ++it) {
    Block block = sample_one(graph, frontier, *it, rng);
    frontier = block.src_nodes;
    reversed.push_back(std::move(block));
  }
  std::vector<Block> blocks(std::make_move_iterator(reversed.rbegin()),
                            std::make_move_iterator(reversed.rend()));

  if (transpose == BlockTranspose::kBuild) {
    // The backward-gather transposes, off the forward's critical path:
    // sampling itself is sequential (each layer's frontier feeds the
    // next), but the counting sorts are independent per layer, so they
    // run as one parallel task each. Without edge positions — the SpMM
    // gather never reads them.
    const auto count = static_cast<std::int64_t>(blocks.size());
#pragma omp parallel for schedule(dynamic, 1) if (count > 1)
    for (std::int64_t l = 0; l < count; ++l) {
      Block& b = blocks[static_cast<std::size_t>(l)];
      b.transpose = std::make_shared<const graph::BlockedCsr>(
          graph::build_blocked_transpose_spans(b.indptr, b.indices, b.values,
                                               b.num_src(),
                                               /*force_wide=*/false,
                                               /*with_epos=*/false));
    }
  }
  return blocks;
}

}  // namespace gsoup
