// GraphSAGE-style neighbour sampling (Hamilton et al.), used by the
// minibatch ingredient trainer. Produces one bipartite "block" per GNN
// layer, innermost (input) layer first, following the DGL convention the
// paper's reference implementation uses: a block's destination nodes are a
// prefix of its source nodes, so layer outputs can be narrowed in place.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace gsoup {

namespace graph {
struct BlockedCsr;
}

/// One bipartite message-passing layer.
struct Block {
  /// Global node ids feeding this layer. The first `num_dst` entries are
  /// exactly the destination nodes (in the same order).
  std::vector<std::int64_t> src_nodes;
  std::int64_t num_dst = 0;
  /// In-edge CSR over local ids: for dst i (< num_dst), sampled neighbour
  /// positions into src_nodes.
  std::vector<std::int64_t> indptr;
  std::vector<std::int32_t> indices;
  /// Mean-aggregation weights (1 / sampled-degree per dst).
  std::vector<float> values;
  /// Cached BlockedCsr transpose for the block_spmm backward gather
  /// (dX = Bᵀ·dY), built at sample time when the caller asked for it
  /// (BlockTranspose::kBuild) so the training forward pays no build.
  /// Null for inference-only or externally constructed blocks —
  /// ag::block_spmm falls back to building it on first grad-recorded use.
  std::shared_ptr<const graph::BlockedCsr> transpose;

  std::int64_t num_src() const {
    return static_cast<std::int64_t>(src_nodes.size());
  }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(indices.size());
  }
};

/// Whether sample_blocks should also build each block's cached backward
/// transpose (one parallel task per layer, overlapping the layers'
/// counting sorts). Training wants kBuild; forward-only consumers skip it.
enum class BlockTranspose { kNone, kBuild };

/// Sample a stack of blocks for `seeds`. fanouts[l] limits the sampled
/// in-neighbours per node at layer l (input-most layer is fanouts[0]); a
/// fanout of -1 keeps all neighbours. Every destination node is also
/// connected to itself (self edges survive sampling because datasets carry
/// self loops; sampling never drops them).
std::vector<Block> sample_blocks(const Csr& graph,
                                 std::span<const std::int64_t> seeds,
                                 std::span<const std::int64_t> fanouts,
                                 Rng& rng,
                                 BlockTranspose transpose = BlockTranspose::kNone);

}  // namespace gsoup
