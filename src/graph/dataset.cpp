#include "graph/dataset.hpp"

#include <sstream>

#include "util/check.hpp"

namespace gsoup {

const std::vector<std::uint8_t>& Dataset::mask(Split split) const {
  switch (split) {
    case Split::kTrain: return train_mask;
    case Split::kVal: return val_mask;
    case Split::kTest: return test_mask;
  }
  GSOUP_CHECK_MSG(false, "invalid split");
  return train_mask;  // unreachable
}

std::vector<std::int64_t> Dataset::split_nodes(Split split) const {
  const auto& m = mask(split);
  std::vector<std::int64_t> nodes;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] != 0) nodes.push_back(static_cast<std::int64_t>(i));
  }
  return nodes;
}

std::int64_t Dataset::split_size(Split split) const {
  const auto& m = mask(split);
  std::int64_t count = 0;
  for (const auto v : m) count += v != 0 ? 1 : 0;
  return count;
}

void Dataset::validate() const {
  graph.validate();
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  GSOUP_CHECK_MSG(features.rank() == 2 &&
                      features.shape(0) == graph.num_nodes,
                  "features rows != num_nodes");
  GSOUP_CHECK_MSG(labels.size() == n, "labels size != num_nodes");
  GSOUP_CHECK_MSG(train_mask.size() == n && val_mask.size() == n &&
                      test_mask.size() == n,
                  "mask size != num_nodes");
  for (const auto y : labels) {
    GSOUP_CHECK_MSG(y >= 0 && y < num_classes, "label out of range");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int members = (train_mask[i] != 0) + (val_mask[i] != 0) +
                        (test_mask[i] != 0);
    GSOUP_CHECK_MSG(members <= 1, "node " << i << " in multiple splits");
  }
}

std::string dataset_summary(const Dataset& data) {
  std::ostringstream os;
  os << data.name << ": " << data.num_nodes() << " nodes, "
     << data.num_edges() << " edges, " << data.num_classes << " classes, "
     << "splits " << data.split_size(Split::kTrain) << "/"
     << data.split_size(Split::kVal) << "/"
     << data.split_size(Split::kTest);
  return os.str();
}

}  // namespace gsoup
