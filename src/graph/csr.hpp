// Compressed-sparse-row graph storage.
//
// Convention: the CSR stores *in-edges*. For destination node i,
// indices[indptr[i] .. indptr[i+1]) are the source nodes j of edges j→i.
// Datasets in this library are symmetrised so in- and out-neighbourhoods
// coincide structurally, but per-edge values (e.g. GCN normalisation
// weights, GAT attention) are directional, so the transpose carries an
// edge-id mapping for backward scatters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gsoup {

struct CsrTranspose;

/// CSR adjacency with optional per-edge weights.
struct Csr {
  std::int64_t num_nodes = 0;
  /// Size num_nodes+1; edge range of node i is [indptr[i], indptr[i+1]).
  std::vector<std::int64_t> indptr;
  /// Size num_edges; source node of each in-edge.
  std::vector<std::int32_t> indices;
  /// Optional, size num_edges when present: per-edge weight.
  std::vector<float> values;

  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(indices.size());
  }
  bool weighted() const { return !values.empty(); }

  /// In-degree of node i.
  std::int64_t degree(std::int64_t i) const {
    return indptr[i + 1] - indptr[i];
  }
  /// Neighbours (sources of in-edges) of node i.
  std::span<const std::int32_t> neighbors(std::int64_t i) const {
    return {indices.data() + indptr[i],
            static_cast<std::size_t>(degree(i))};
  }

  /// Structural validation: monotone indptr, indices in range, sizes
  /// consistent. Throws CheckError on violation.
  void validate() const;

  /// True if for every edge (j -> i) the reverse edge (i -> j) exists.
  bool is_symmetric() const;

  /// Build the transpose (out-edge view) with an edge-id mapping back into
  /// this CSR. values are carried through the permutation when present.
  CsrTranspose transpose() const;
};

/// Transpose of a Csr: `graph` is the transposed adjacency, and
/// edge_map[k] gives the edge id in the *original* CSR corresponding to
/// transposed edge k (needed to look up per-edge quantities saved during a
/// forward pass when scattering gradients by source).
struct CsrTranspose {
  Csr graph;
  std::vector<std::int64_t> edge_map;
};

}  // namespace gsoup
