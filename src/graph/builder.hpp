// COO edge-list to CSR conversion with the cleanup passes every real
// dataset needs: duplicate removal, optional symmetrisation, optional
// self-loop insertion (GCN's Ã = A + I).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gsoup {

/// A directed edge src -> dst.
struct Edge {
  std::int32_t src = 0;
  std::int32_t dst = 0;
};

struct BuildOptions {
  bool symmetrize = true;     ///< add the reverse of every edge
  bool add_self_loops = true; ///< ensure (i -> i) for every node
  bool remove_self_loops_first = true;  ///< drop input self loops before add
};

/// Build a CSR (in-edge convention) from a COO edge list. Duplicates are
/// always removed; neighbour lists come out sorted by source id.
Csr build_csr(std::int64_t num_nodes, std::vector<Edge> edges,
              const BuildOptions& options = {});

}  // namespace gsoup
