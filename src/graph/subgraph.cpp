#include "graph/subgraph.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace gsoup {

Subgraph induced_subgraph(const Dataset& parent,
                          std::span<const std::int64_t> nodes) {
  const std::int64_t parent_n = parent.num_nodes();
  GSOUP_CHECK_MSG(!nodes.empty(), "subgraph needs at least one node");
  GSOUP_CHECK_MSG(std::is_sorted(nodes.begin(), nodes.end()),
                  "subgraph node list must be sorted");
  GSOUP_CHECK_MSG(
      std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end(),
      "subgraph node list must be unique");
  GSOUP_CHECK_MSG(nodes.front() >= 0 && nodes.back() < parent_n,
                  "subgraph node id out of range");

  const auto sub_n = static_cast<std::int64_t>(nodes.size());
  std::vector<std::int32_t> remap(static_cast<std::size_t>(parent_n), -1);
  for (std::int64_t i = 0; i < sub_n; ++i) {
    remap[nodes[i]] = static_cast<std::int32_t>(i);
  }

  Subgraph out;
  out.origin.assign(nodes.begin(), nodes.end());
  Dataset& data = out.data;
  data.name = parent.name + "/sub" + std::to_string(sub_n);
  data.num_classes = parent.num_classes;

  // Edges survive iff both endpoints are selected; per-edge values are
  // dropped (the layers re-normalise the induced graph, matching how PLS
  // recomputes aggregation weights on each epoch's subgraph).
  Csr& g = data.graph;
  g.num_nodes = sub_n;
  g.indptr.assign(static_cast<std::size_t>(sub_n) + 1, 0);
  for (std::int64_t i = 0; i < sub_n; ++i) {
    const std::int64_t p = nodes[i];
    std::int64_t kept = 0;
    for (const auto j : parent.graph.neighbors(p)) {
      if (remap[j] >= 0) ++kept;
    }
    g.indptr[i + 1] = g.indptr[i] + kept;
  }
  g.indices.resize(static_cast<std::size_t>(g.indptr.back()));
  for (std::int64_t i = 0; i < sub_n; ++i) {
    const std::int64_t p = nodes[i];
    std::int64_t cursor = g.indptr[i];
    for (const auto j : parent.graph.neighbors(p)) {
      if (remap[j] >= 0) g.indices[cursor++] = remap[j];
    }
  }

  // Gather node payloads.
  const std::int64_t d = parent.feature_dim();
  data.features = Tensor::empty({sub_n, d});
  data.labels.resize(static_cast<std::size_t>(sub_n));
  data.train_mask.resize(static_cast<std::size_t>(sub_n));
  data.val_mask.resize(static_cast<std::size_t>(sub_n));
  data.test_mask.resize(static_cast<std::size_t>(sub_n));
  const float* src_feat = parent.features.data();
  float* dst_feat = data.features.data();
  for (std::int64_t i = 0; i < sub_n; ++i) {
    const std::int64_t p = nodes[i];
    std::memcpy(dst_feat + i * d, src_feat + p * d,
                static_cast<std::size_t>(d) * sizeof(float));
    data.labels[i] = parent.labels[p];
    data.train_mask[i] = parent.train_mask[p];
    data.val_mask[i] = parent.val_mask[p];
    data.test_mask[i] = parent.test_mask[p];
  }

  data.validate();
  return out;
}

}  // namespace gsoup
