#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gsoup {

Csr build_csr(std::int64_t num_nodes, std::vector<Edge> edges,
              const BuildOptions& options) {
  GSOUP_CHECK_MSG(num_nodes > 0, "graph needs at least one node");
  for (const auto& e : edges) {
    GSOUP_CHECK_MSG(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                        e.dst < num_nodes,
                    "edge endpoint out of range");
  }

  if (options.remove_self_loops_first) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }

  if (options.add_self_loops) {
    edges.reserve(edges.size() + static_cast<std::size_t>(num_nodes));
    for (std::int64_t i = 0; i < num_nodes; ++i) {
      const auto v = static_cast<std::int32_t>(i);
      edges.push_back({v, v});
    }
  }

  // Sort by (dst, src) so each destination's in-edge list is contiguous and
  // sorted; dedup then removes parallel edges.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  Csr csr;
  csr.num_nodes = num_nodes;
  csr.indptr.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  csr.indices.reserve(edges.size());
  for (const auto& e : edges) {
    ++csr.indptr[static_cast<std::size_t>(e.dst) + 1];
    csr.indices.push_back(e.src);
  }
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    csr.indptr[i + 1] += csr.indptr[i];
  }
  csr.validate();
  return csr;
}

}  // namespace gsoup
