// Graph locality layer: vertex reordering and a cached SpMM layout.
//
// The fused SpMM kernels are gather-bandwidth-bound at the larger feature
// widths: every edge reads a full X row whose address is a function of the
// graph's (arbitrary) vertex numbering. This layer attacks that from the
// data side, once per graph instead of once per kernel launch:
//
//  - `Permutation` + `degree_permutation`/`rcm_permutation`: relabel
//    vertices so frequently-gathered rows are clustered (hubs first for
//    degree ordering, bandwidth-minimised BFS levels for reverse
//    Cuthill-McKee). The inverse mapping is kept so per-node answers can
//    be routed back to the caller's numbering.
//  - `BlockedCsr`: the layout the SpMM and GAT-attention hot loops
//    actually read — the edge-balanced row blocks pre-computed once
//    (instead of a binary search per kernel launch) and column indices
//    narrowed to 16 bits when the column-id domain fits (halves index
//    traffic on every graph below 65 536 nodes, which covers every
//    synthetic preset at default scale). Transpose builds additionally
//    record per-edge positions into the source CSR, turning backward
//    scatters (GAT dH/dscore_src, minibatch block_spmm dX) into race-free
//    parallel gathers.
//  - `GraphPlan`: the per-graph handle bundling both. Training
//    (`GraphContext` + `GnnModel::forward`), the experiment harness and
//    `serve::InferenceEngine` all hold one so the permutation and layout
//    are built exactly once per graph and reused across every epoch,
//    evaluation and query.
//
// Numerics: `permute_csr` preserves the relative edge order inside every
// row, so an SpMM over the permuted operands performs the *same float
// operations per output row* as the fused kernel over the original
// operands — results round-trip through the permutation bit-exactly
// (asserted by tests/test_locality.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dataset.hpp"
#include "tensor/tensor.hpp"

namespace gsoup::graph {

/// Vertex-reordering strategy for a GraphPlan.
enum class Reorder {
  kNone,    ///< keep the caller's numbering (layout caching still applies)
  kDegree,  ///< descending degree: hub rows clustered at the front of X
  kRcm,     ///< reverse Cuthill-McKee: BFS levels, minimised bandwidth
};

const char* reorder_name(Reorder strategy);
/// Parse "none" / "degree" / "rcm" (exact, lowercase); nullopt otherwise.
std::optional<Reorder> reorder_from_name(std::string_view name);

/// A vertex relabelling and its inverse. `order[new_id] = old_id` (gather
/// direction: row new_id of a permuted matrix is row old_id of the
/// original) and `rank[old_id] = new_id`.
struct Permutation {
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> rank;

  std::int64_t size() const {
    return static_cast<std::int64_t>(order.size());
  }
  bool is_identity() const;
};

Permutation identity_permutation(std::int64_t num_nodes);
/// Stable sort by descending degree (ties keep the original order).
Permutation degree_permutation(const Csr& graph);
/// Reverse Cuthill-McKee: BFS from a minimum-degree seed per component,
/// neighbours visited in ascending-degree order, final order reversed.
Permutation rcm_permutation(const Csr& graph);
Permutation make_permutation(const Csr& graph, Reorder strategy);

/// Relabel a CSR by `perm`: row rank[i] of the result is row i of the
/// input with sources mapped through rank[], preserving the relative edge
/// order within the row (the bit-exactness contract above). Edge values
/// ride along when present.
Csr permute_csr(const Csr& csr, const Permutation& perm);

/// Reordered copies of per-node data: out[i] = in[order[i]].
Tensor permute_rows(const Tensor& rows, const Permutation& perm);
/// Inverse: out[order[i]] = in[i], returning plan-space rows to the
/// original numbering.
Tensor unpermute_rows(const Tensor& rows, const Permutation& perm);

/// Maximum source-id domain for 16-bit column indices.
inline constexpr std::int64_t kNarrowIndexLimit = 1 << 16;

/// The cached layout the width-specialised sparse kernels read: same
/// indptr as the source CSR, column indices stored at the narrowest width
/// that fits, and the edge-balanced row blocks pre-computed once and
/// reused by every kernel launch (training runs one binary search per
/// SpMM per epoch without this; serving one per query). SpMM operands
/// carry `values`; attention layouts are structure-only (values empty).
/// Transpose layouts (build_blocked_transpose*) additionally carry `epos`,
/// the edge position in the *source* CSR of every layout edge, so backward
/// passes can look up per-edge forward quantities (attention coefficients,
/// stashed dz) while gathering race-free by source row.
struct BlockedCsr {
  std::int64_t num_rows = 0;
  /// Column-id domain (== num_rows for square adjacencies). Decides the
  /// index width: 16-bit iff num_cols <= kNarrowIndexLimit.
  std::int64_t num_cols = 0;
  std::vector<std::int64_t> indptr;
  std::vector<std::uint16_t> idx16;  ///< populated iff narrow()
  std::vector<std::int32_t> idx32;   ///< populated iff !narrow()
  std::vector<float> values;  ///< empty for structure-only (attention) use
  /// Edge position in the source CSR per layout edge; populated only by
  /// the transpose builders. 32-bit (half the traffic of CsrTranspose's
  /// int64 edge_map) — checked against overflow at build time.
  std::vector<std::int32_t> epos;
  /// Cached balanced_row_chunks boundaries (size blocks+1).
  std::vector<std::int64_t> row_blocks;

  bool narrow() const { return num_cols <= kNarrowIndexLimit; }
  bool weighted() const { return !values.empty(); }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(narrow() ? idx16.size() : idx32.size());
  }
};

/// Build the cached layout for a CSR: weighted (SpMM operand) or
/// structure-only (GAT attention gather). `force_wide` keeps 32-bit
/// indices even when the graph fits 16 (used by the width-parity tests).
BlockedCsr build_blocked_csr(const Csr& csr, bool force_wide = false);

/// Build the cached layout of a CSR's *transpose*: row j of the result
/// lists the in-edges (j -> i) of the source CSR by destination i, in
/// ascending-destination order. Values ride along when present; with
/// `with_epos` (the default) each edge's position in the source CSR is
/// recorded too. Serves the race-free backward gathers of GAT attention
/// (alpha/dz lookups by epos) at the layout's index width; pure SpMM
/// backwards (block_spmm) skip epos — they only need the transposed
/// values.
BlockedCsr build_blocked_transpose(const Csr& csr, bool force_wide = false,
                                   bool with_epos = true);

/// Span variant of build_blocked_transpose for bipartite block-local CSRs
/// (minibatch Blocks, serving layer plans) that are not Csr objects:
/// `indptr`/`indices`/`values` describe num_dst = indptr.size()-1 rows
/// whose indices address [0, num_src). The result has num_src rows and a
/// num_dst column domain. The transposed `values` make the minibatch
/// block_spmm backward dX = Bᵀ·dY a plain blocked SpMM accumulate.
BlockedCsr build_blocked_transpose_spans(
    std::span<const std::int64_t> indptr,
    std::span<const std::int32_t> indices, std::span<const float> values,
    std::int64_t num_src, bool force_wide = false, bool with_epos = true);

/// The per-graph locality handle: a reordering of one graph's vertices
/// plus everything needed to move data in and out of plan space. Build it
/// once per graph, share it (`std::shared_ptr`) between the dataset
/// pipeline, the GraphContext and the serving engine.
class GraphPlan {
 public:
  GraphPlan(const Csr& graph, Reorder strategy);

  Reorder strategy() const { return strategy_; }
  /// True when vertex ids differ from the caller's numbering (i.e. any
  /// strategy but kNone): per-node data and ids must be mapped.
  bool active() const { return strategy_ != Reorder::kNone; }
  const Permutation& perm() const { return perm_; }
  /// The reordered structure (== the input graph when not active).
  const Csr& graph() const { return graph_; }
  std::int64_t num_nodes() const { return graph_.num_nodes; }

  /// Map a node id between the original and plan numbering.
  std::int64_t to_plan(std::int64_t node) const {
    return active() ? perm_.rank[static_cast<std::size_t>(node)] : node;
  }
  std::int64_t to_original(std::int64_t node) const {
    return active() ? perm_.order[static_cast<std::size_t>(node)] : node;
  }

  /// Permute any CSR over the same node set (e.g. a normalised adjacency).
  Csr apply(const Csr& csr) const;
  /// Permute a whole dataset: graph, features, labels and split masks.
  /// The dataset must be the one this plan was built from (its permuted
  /// graph is reused, not recomputed). Aggregate metrics (loss,
  /// accuracy) are invariant under this; only per-node outputs need
  /// `to_original`/`unpermute_rows` mapping.
  Dataset apply(const Dataset& data) const;

  Tensor permute_rows(const Tensor& rows) const;
  Tensor unpermute_rows(const Tensor& rows) const;
  /// Allocation-free inverse permute into a preallocated tensor (serving
  /// hot path; `out` must match `rows` in shape).
  void unpermute_rows_into(const Tensor& rows, Tensor& out) const;

 private:
  Reorder strategy_;
  Permutation perm_;
  Csr graph_;
};

}  // namespace gsoup::graph
