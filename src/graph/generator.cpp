#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/builder.hpp"
#include "tensor/init.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gsoup {

namespace {

/// Weighted sampling from a prefix-sum table via binary search.
class PrefixSampler {
 public:
  explicit PrefixSampler(const std::vector<double>& weights) {
    prefix_.resize(weights.size());
    std::partial_sum(weights.begin(), weights.end(), prefix_.begin());
    GSOUP_CHECK_MSG(!prefix_.empty() && prefix_.back() > 0.0,
                    "sampler needs positive total weight");
  }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform() * prefix_.back();
    const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), u);
    return std::min<std::size_t>(
        static_cast<std::size_t>(it - prefix_.begin()), prefix_.size() - 1);
  }

 private:
  std::vector<double> prefix_;
};

}  // namespace

Dataset generate_dataset(const SyntheticSpec& spec) {
  GSOUP_CHECK_MSG(spec.num_nodes >= spec.num_classes,
                  "need at least one node per class");
  GSOUP_CHECK_MSG(spec.num_classes >= 2, "need at least two classes");
  GSOUP_CHECK_MSG(spec.train_frac + spec.val_frac < 1.0,
                  "train+val fractions must leave room for test");
  Rng rng(spec.seed);

  const auto n = spec.num_nodes;
  const auto c = spec.num_classes;

  // ---- Labels: uniform assignment with every class non-empty. ----------
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(
        i < c ? i : static_cast<std::int64_t>(rng.uniform_int(c)));
  }

  // ---- Degree propensities (lognormal heterogeneity). -------------------
  Rng deg_rng = rng.child(1);
  std::vector<double> propensity(static_cast<std::size_t>(n));
  for (auto& w : propensity) {
    w = std::exp(spec.degree_sigma * deg_rng.normal());
  }

  std::vector<std::vector<std::int32_t>> class_nodes(
      static_cast<std::size_t>(c));
  for (std::int64_t i = 0; i < n; ++i) {
    class_nodes[labels[i]].push_back(static_cast<std::int32_t>(i));
  }

  PrefixSampler global_sampler(propensity);
  std::vector<PrefixSampler> class_samplers;
  class_samplers.reserve(static_cast<std::size_t>(c));
  for (std::int64_t k = 0; k < c; ++k) {
    std::vector<double> w;
    w.reserve(class_nodes[k].size());
    for (const auto v : class_nodes[k]) w.push_back(propensity[v]);
    class_samplers.emplace_back(w);
  }

  // ---- Edges: propensity-weighted endpoints; homophily picks whether the
  // second endpoint comes from the first endpoint's class. ----------------
  Rng edge_rng = rng.child(2);
  const auto target_edges = static_cast<std::int64_t>(
      static_cast<double>(n) * spec.avg_degree / 2.0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(target_edges));
  for (std::int64_t e = 0; e < target_edges; ++e) {
    const auto u = static_cast<std::int32_t>(global_sampler.sample(edge_rng));
    std::int32_t v = u;
    for (int attempt = 0; attempt < 8 && v == u; ++attempt) {
      if (edge_rng.bernoulli(spec.homophily)) {
        const auto k = labels[u];
        v = class_nodes[k][class_samplers[k].sample(edge_rng)];
      } else {
        v = static_cast<std::int32_t>(global_sampler.sample(edge_rng));
      }
    }
    if (v != u) edges.push_back({u, v});
  }

  Dataset data;
  data.name = spec.name;
  data.graph = build_csr(n, std::move(edges),
                         {.symmetrize = true, .add_self_loops = true});

  // ---- Features: class centroid + isotropic Gaussian noise. -------------
  Rng feat_rng = rng.child(3);
  Tensor centroids = Tensor::empty({c, spec.feature_dim});
  // Unit-scale centroids; the separation/noise ratio (1 / feature_noise)
  // controls classification difficulty.
  init::normal(centroids, feat_rng, 0.0f, 1.0f);
  data.features = Tensor::empty({n, spec.feature_dim});
  const float* pc = centroids.data();
  float* pf = data.features.data();
  const auto d = spec.feature_dim;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* centroid = pc + labels[i] * d;
    for (std::int64_t j = 0; j < d; ++j) {
      pf[i * d + j] =
          centroid[j] +
          feat_rng.normal(0.0f, static_cast<float>(spec.feature_noise));
    }
  }
  // Standardise each feature column to zero mean / unit variance, as OGB
  // feature matrices effectively are. This leaves the signal-to-noise
  // ratio (and hence difficulty) untouched but keeps magnitudes in a
  // range where unnormalised attention scores (GAT) behave.
  for (std::int64_t j = 0; j < d; ++j) {
    double mean = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      mean += pf[i * d + j];
      sq += static_cast<double>(pf[i * d + j]) * pf[i * d + j];
    }
    mean /= static_cast<double>(n);
    const double var = std::max(1e-12, sq / static_cast<double>(n) -
                                           mean * mean);
    const auto inv_std = static_cast<float>(1.0 / std::sqrt(var));
    for (std::int64_t i = 0; i < n; ++i) {
      pf[i * d + j] = (pf[i * d + j] - static_cast<float>(mean)) * inv_std;
    }
  }

  // Label ambiguity: flip a fraction of observed labels AFTER edges and
  // features were generated from the true labels, creating an irreducible
  // error floor (≈ label_noise) independent of graph density.
  if (spec.label_noise > 0.0) {
    Rng flip_rng = rng.child(5);
    for (std::int64_t i = 0; i < n; ++i) {
      if (flip_rng.bernoulli(spec.label_noise)) {
        labels[i] = static_cast<std::int32_t>(flip_rng.uniform_int(c));
      }
    }
  }

  data.labels = std::move(labels);
  data.num_classes = c;

  // ---- Splits: random permutation cut at the requested fractions. -------
  Rng split_rng = rng.child(4);
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int64_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[split_rng.uniform_int(
                           static_cast<std::uint64_t>(i) + 1)]);
  }
  const auto n_train = static_cast<std::int64_t>(
      static_cast<double>(n) * spec.train_frac);
  const auto n_val =
      static_cast<std::int64_t>(static_cast<double>(n) * spec.val_frac);
  data.train_mask.assign(static_cast<std::size_t>(n), 0);
  data.val_mask.assign(static_cast<std::size_t>(n), 0);
  data.test_mask.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i < n_train) {
      data.train_mask[perm[i]] = 1;
    } else if (i < n_train + n_val) {
      data.val_mask[perm[i]] = 1;
    } else {
      data.test_mask[perm[i]] = 1;
    }
  }

  data.validate();
  return data;
}

// Preset scales: CPU-sized defaults keep the full 12-cell experiment matrix
// (3 architectures × 4 datasets) tractable on a laptop while preserving the
// paper's relative dataset ordering in size, density, difficulty and split
// shape (Table I ratios).

SyntheticSpec flickr_like_spec(double scale) {
  SyntheticSpec s;
  s.name = "flickr-like";
  s.num_nodes = static_cast<std::int64_t>(2500 * scale);
  s.avg_degree = 10.0;   // 0.9M/89.3K ≈ 10
  s.num_classes = 7;
  s.feature_dim = 64;
  s.homophily = 0.42;     // low homophily: souping's hard regime (§V-A)
  s.feature_noise = 11.0; // weak features → ~52% ingredient accuracy band
  s.degree_sigma = 1.0;
  s.train_frac = 0.50;
  s.val_frac = 0.25;     // paper split 0.5/0.25/0.25
  s.seed = 101;
  return s;
}

SyntheticSpec arxiv_like_spec(double scale) {
  SyntheticSpec s;
  s.name = "arxiv-like";
  s.num_nodes = static_cast<std::int64_t>(4000 * scale);
  s.avg_degree = 14.0;   // 2*1.2M/169.3K ≈ 14 after symmetrisation
  s.num_classes = 40;
  s.feature_dim = 96;
  s.homophily = 0.58;
  s.feature_noise = 11.0; // mid difficulty → ~70% band
  s.degree_sigma = 0.9;
  s.train_frac = 0.54;
  s.val_frac = 0.18;     // paper split 0.54/0.18/0.28
  s.seed = 202;
  return s;
}

SyntheticSpec reddit_like_spec(double scale) {
  SyntheticSpec s;
  s.name = "reddit-like";
  s.num_nodes = static_cast<std::int64_t>(5000 * scale);
  s.avg_degree = 40.0;   // Reddit is dense: 2*11.6M/233K ≈ 100; capped
  s.num_classes = 41;
  s.feature_dim = 96;
  s.homophily = 0.9;      // high homophily: strong-ingredient regime
  s.feature_noise = 4.0;  // dense graph denoises features...
  s.label_noise = 0.045;  // ...so the ~95% band comes from label ambiguity
  s.degree_sigma = 0.7;
  s.train_frac = 0.66;
  s.val_frac = 0.10;     // paper split 0.66/0.1/0.24
  s.seed = 303;
  return s;
}

SyntheticSpec products_like_spec(double scale) {
  SyntheticSpec s;
  s.name = "products-like";
  s.num_nodes = static_cast<std::int64_t>(16000 * scale);
  s.avg_degree = 25.0;   // 2*61.9M/2.4M ≈ 50; capped for CPU
  s.num_classes = 47;
  s.feature_dim = 80;
  s.homophily = 0.72;
  s.feature_noise = 12.0; // ~75-80% band
  s.degree_sigma = 1.1;
  s.train_frac = 0.10;
  s.val_frac = 0.02;     // paper split 0.1/0.02/0.88
  s.seed = 404;
  return s;
}

std::vector<SyntheticSpec> paper_dataset_specs(double scale) {
  return {flickr_like_spec(scale), arxiv_like_spec(scale),
          reddit_like_spec(scale), products_like_spec(scale)};
}

}  // namespace gsoup
