#include "graph/normalize.hpp"

#include <cmath>

namespace gsoup {

Csr gcn_normalize(const Csr& graph) {
  Csr out = graph;
  out.values.resize(graph.indices.size());
  // For symmetric graphs in-degree == out-degree, so d_j can be read from
  // the in-degree array as well.
  std::vector<float> inv_sqrt_deg(static_cast<std::size_t>(graph.num_nodes));
  for (std::int64_t i = 0; i < graph.num_nodes; ++i) {
    const auto d = graph.degree(i);
    inv_sqrt_deg[i] =
        d > 0 ? 1.0f / std::sqrt(static_cast<float>(d)) : 0.0f;
  }
  for (std::int64_t i = 0; i < graph.num_nodes; ++i) {
    for (std::int64_t e = graph.indptr[i]; e < graph.indptr[i + 1]; ++e) {
      out.values[e] = inv_sqrt_deg[i] * inv_sqrt_deg[graph.indices[e]];
    }
  }
  return out;
}

Csr row_normalize(const Csr& graph) {
  Csr out = graph;
  out.values.resize(graph.indices.size());
  for (std::int64_t i = 0; i < graph.num_nodes; ++i) {
    const auto d = graph.degree(i);
    const float w = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
    for (std::int64_t e = graph.indptr[i]; e < graph.indptr[i + 1]; ++e) {
      out.values[e] = w;
    }
  }
  return out;
}

}  // namespace gsoup
