// GIS granularity ablation (Alg. 2's one hyperparameter): accuracy/time
// trade-off of the exhaustive ratio grid, demonstrating the O(N·g·F_v)
// cost LS sidesteps. Run on the arxiv-like GCN cell.
#include <cstdio>

#include "core/gis.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  auto scale = bench::Scale::from_env();
  const int preset = 1;  // arxiv-like
  const Arch arch = Arch::kGcn;

  const Dataset data = bench::make_dataset(preset, scale);
  const GnnModel model(bench::cell_model_config(arch, data));
  const GraphContext ctx(data.graph, arch);
  const auto ingredients = bench::get_ingredients(model, ctx, data, scale);
  const SoupContext sctx{model, ctx, data, ingredients};

  Table table("Ablation: GIS granularity g (GCN on arxiv-like) — cost is "
              "O(N*g*Fv)");
  table.set_header({"g", "evaluations", "test acc %", "val acc %",
                    "time (s)"});
  for (const std::int64_t g : {3LL, 5LL, 10LL, 20LL, 50LL, 100LL}) {
    GisSouper souper({.granularity = g});
    const SoupReport report = run_souper(souper, sctx);
    table.add_row({std::to_string(g), std::to_string(souper.evaluations()),
                   Table::fmt(report.test_acc * 100),
                   Table::fmt(report.val_acc * 100),
                   Table::fmt(report.seconds, 3)});
  }
  table.print();
  std::printf("\nTime grows linearly in g while accuracy saturates — the "
              "exhaustive-search overhead motivating Learned Souping "
              "(paper §I, §III-E).\n");
  return 0;
}
