// Ingredient-count scaling ablation (paper §I: GIS's "exhaustive search
// does not scale well as more ingredients are added"). GIS's souping time
// grows as O(N·g·F_v) while LS's O(e·(F_v+B_v)) is independent of N, so
// the LS speedup widens with the ingredient pool — the effect behind the
// paper's N=50 headline numbers. Uses prefixes of the cached ingredient
// set of the arxiv-like GCN cell.
#include <cstdio>

#include "core/gis.hpp"
#include "core/learned.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  auto scale = bench::Scale::from_env();
  const Dataset data = bench::make_dataset(1, scale);  // arxiv-like
  const GnnModel model(bench::cell_model_config(Arch::kGcn, data));
  const GraphContext ctx(data.graph, Arch::kGcn);
  const auto all = bench::get_ingredients(model, ctx, data, scale);

  Table table("Ablation: souping cost vs ingredient count N (GCN on "
              "arxiv-like, GIS g=50)");
  table.set_header({"N", "GIS time (s)", "LS time (s)", "LS speedup",
                    "GIS test %", "LS test %"});
  for (std::size_t n = 2; n <= all.size(); n *= 2) {
    const std::span<const Ingredient> subset(all.data(), n);
    const SoupContext sctx{model, ctx, data, subset};

    GisSouper gis({.granularity = scale.gis_granularity});
    const SoupReport gis_report = run_souper(gis, sctx);
    LearnedSoupConfig ls_cfg;
    ls_cfg.epochs = scale.ls_epochs;
    LearnedSouper ls(ls_cfg);
    const SoupReport ls_report = run_souper(ls, sctx);

    table.add_row({std::to_string(n), Table::fmt(gis_report.seconds, 3),
                   Table::fmt(ls_report.seconds, 3),
                   Table::fmt(gis_report.seconds /
                                  std::max(1e-9, ls_report.seconds),
                              2) +
                       "x",
                   Table::fmt(gis_report.test_acc * 100),
                   Table::fmt(ls_report.test_acc * 100)});
  }
  table.print();
  std::printf("\nGIS time scales ~linearly with N; LS time is flat — at "
              "the paper's N=50 the gap reaches the reported 2.1x+ "
              "speedups.\n");
  return 0;
}
