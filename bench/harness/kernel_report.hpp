// Machine-readable kernel-benchmark reporting.
//
// Every scaling PR from here on is judged against `BENCH_kernels.json`, the
// per-kernel throughput baseline this harness emits. A record is one
// (kernel, variant, shape) cell with wall-clock stats and derived GFLOP/s
// and GB/s, plus the speedup over the naive reference variant when both
// were measured in the same run. Schema documented in README.md and
// versioned via the top-level "schema" key.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gsoup::bench {

/// One measured (kernel, variant, shape) cell.
struct KernelResult {
  std::string kernel;   ///< e.g. "matmul", "spmm"
  std::string variant;  ///< "blocked", "naive", "balanced", ...
  std::string shape;    ///< e.g. "m=512,k=512,n=512"
  std::int64_t iterations = 0;
  double seconds_min = 0.0;   ///< best iteration (reported throughput basis)
  double seconds_mean = 0.0;  ///< mean over iterations
  double flops = 0.0;         ///< useful FLOPs per iteration
  double bytes = 0.0;         ///< bytes moved per iteration (compulsory)
  double speedup_vs_naive = 0.0;  ///< 0 when no naive twin was measured
  /// Speedup over the "fused" variant of the same kernel+shape, filled for
  /// the locality variants ("cached", "reordered") so the gain of the
  /// graph locality layer is gated separately from the naive baseline.
  /// 0 when no fused twin was measured (or for naive/fused records).
  double speedup_vs_fused = 0.0;

  double gflops() const {
    return seconds_min > 0.0 ? flops / seconds_min * 1e-9 : 0.0;
  }
  double gbps() const {
    return seconds_min > 0.0 ? bytes / seconds_min * 1e-9 : 0.0;
  }
};

/// Repeatedly invoke `fn` until both `min_iters` iterations and
/// `min_seconds` of accumulated wall-clock have elapsed; fills the timing
/// fields of `r`. `fn` must do one full kernel invocation per call.
void time_kernel(KernelResult& r, const std::function<void()>& fn,
                 std::int64_t min_iters, double min_seconds);

/// Collects results, prints a human table, and writes BENCH_kernels.json.
class KernelReport {
 public:
  explicit KernelReport(std::string mode) : mode_(std::move(mode)) {}

  void add(KernelResult r);

  /// Backfill speedup_vs_naive: for each record, find the record with the
  /// same kernel+shape and variant == "naive" and divide its seconds_min.
  /// Likewise speedup_vs_fused against the "fused" twin for every other
  /// non-naive variant.
  void compute_speedups();

  /// Write the JSON artifact. Returns false (and logs) on I/O failure.
  bool write_json(const std::string& path) const;

  /// Aligned human-readable table on stdout.
  void print_table() const;

  const std::vector<KernelResult>& results() const { return results_; }

 private:
  std::string mode_;
  std::vector<KernelResult> results_;
};

}  // namespace gsoup::bench
