#include "harness/kernel_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/timer.hpp"

namespace gsoup::bench {

namespace {

int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// JSON string escaping for the small identifier strings we emit.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void time_kernel(KernelResult& r, const std::function<void()>& fn,
                 std::int64_t min_iters, double min_seconds) {
  // One untimed warm-up pass: page in buffers, prime caches and the OpenMP
  // thread team so the first timed iteration is not an outlier.
  fn();
  double total = 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::int64_t iters = 0;
  while (iters < min_iters || total < min_seconds) {
    Timer t;
    fn();
    const double s = t.seconds();
    total += s;
    best = std::min(best, s);
    ++iters;
  }
  r.iterations = iters;
  r.seconds_min = best;
  r.seconds_mean = total / static_cast<double>(iters);
}

void KernelReport::add(KernelResult r) { results_.push_back(std::move(r)); }

void KernelReport::compute_speedups() {
  const auto twin = [this](const KernelResult& r, const char* variant) {
    return std::find_if(results_.begin(), results_.end(),
                        [&](const KernelResult& o) {
                          return o.kernel == r.kernel && o.shape == r.shape &&
                                 o.variant == variant;
                        });
  };
  for (auto& r : results_) {
    if (r.variant == "naive" || r.seconds_min <= 0.0) continue;
    if (const auto naive = twin(r, "naive"); naive != results_.end()) {
      r.speedup_vs_naive = naive->seconds_min / r.seconds_min;
    }
    if (r.variant == "fused") continue;
    if (const auto fused = twin(r, "fused"); fused != results_.end()) {
      r.speedup_vs_fused = fused->seconds_min / r.seconds_min;
    }
  }
}

bool KernelReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "kernel_report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"schema\": \"gsoup-bench-kernels/v1\",\n";
  out << "  \"mode\": \"" << json_escape(mode_) << "\",\n";
  out << "  \"threads\": " << num_threads() << ",\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const auto& r = results_[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"shape\": \"%s\", "
        "\"iterations\": %lld, \"seconds_min\": %.6e, \"seconds_mean\": "
        "%.6e, \"flops\": %.6e, \"bytes\": %.6e, \"gflops\": %.3f, "
        "\"gbps\": %.3f, \"speedup_vs_naive\": %.3f, "
        "\"speedup_vs_fused\": %.3f}",
        json_escape(r.kernel).c_str(), json_escape(r.variant).c_str(),
        json_escape(r.shape).c_str(),
        static_cast<long long>(r.iterations), r.seconds_min, r.seconds_mean,
        r.flops, r.bytes, r.gflops(), r.gbps(), r.speedup_vs_naive,
        r.speedup_vs_fused);
    out << buf << (i + 1 < results_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

void KernelReport::print_table() const {
  std::printf("%-14s %-10s %-28s %10s %10s %8s %9s\n", "kernel", "variant",
              "shape", "GFLOP/s", "GB/s", "speedup", "vs-fused");
  for (const auto& r : results_) {
    char speedup[32] = "-";
    if (r.speedup_vs_naive > 0.0) {
      std::snprintf(speedup, sizeof(speedup), "%.2fx", r.speedup_vs_naive);
    }
    char vs_fused[32] = "-";
    if (r.speedup_vs_fused > 0.0) {
      std::snprintf(vs_fused, sizeof(vs_fused), "%.2fx", r.speedup_vs_fused);
    }
    std::printf("%-14s %-10s %-28s %10.2f %10.2f %8s %9s\n", r.kernel.c_str(),
                r.variant.c_str(), r.shape.c_str(), r.gflops(), r.gbps(),
                speedup, vs_fused);
  }
}

}  // namespace gsoup::bench
