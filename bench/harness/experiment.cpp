#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "core/gis.hpp"
#include "core/learned.hpp"
#include "core/pls.hpp"
#include "core/uniform.hpp"
#include "harness/results_cache.hpp"
#include "io/ingredient_cache.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace gsoup::bench {

Scale Scale::from_env() {
  Scale s;
  s.ingredients = env_int("GSOUP_INGREDIENTS", 8);
  s.trials = env_int("GSOUP_TRIALS", 2);
  s.dataset_scale = env_double("GSOUP_SCALE", 1.0);
  s.ingredient_epochs = env_int("GSOUP_INGREDIENT_EPOCHS", 40);
  s.gis_granularity = env_int("GSOUP_GIS_GRANULARITY", 30);
  s.ls_epochs = env_int("GSOUP_LS_EPOCHS", 40);
  s.pls_epochs = env_int("GSOUP_PLS_EPOCHS", 60);
  s.pls_parts = env_int("GSOUP_PLS_PARTS", 32);
  s.pls_budget = env_int("GSOUP_PLS_BUDGET", 8);
  // Default W to the hardware: every core trains an independent ingredient
  // (zero communication), so oversubscribing buys nothing and
  // undersubscribing leaves the paper's (N/W) speedup on the table.
  const auto hw = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  s.workers = std::max<std::int64_t>(1, env_int("GSOUP_WORKERS", hw));
  const std::string reorder = env_str("GSOUP_REORDER", "none");
  const auto parsed = graph::reorder_from_name(reorder);
  GSOUP_CHECK_MSG(parsed.has_value(),
                  "GSOUP_REORDER must be none|degree|rcm, got '" << reorder
                                                                 << "'");
  s.reorder = *parsed;
  s.cache_dir = io::default_cache_dir();
  return s;
}

std::string Scale::tag() const {
  std::ostringstream os;
  os << "n" << ingredients << "-e" << ingredient_epochs << "-s"
     << dataset_scale;
  // Reordering permutes the dropout-mask-to-node assignment, so cached
  // accuracies are not interchangeable with the unreordered runs.
  if (reorder != graph::Reorder::kNone) {
    os << "-" << graph::reorder_name(reorder);
  }
  return os.str();
}

std::vector<Arch> paper_archs() {
  return {Arch::kGcn, Arch::kGat, Arch::kSage};
}

std::string preset_name(int preset) {
  switch (preset) {
    case 0: return "flickr-like";
    case 1: return "arxiv-like";
    case 2: return "reddit-like";
    case 3: return "products-like";
  }
  GSOUP_CHECK_MSG(false, "preset out of range");
  return {};
}

Dataset make_dataset(int preset, const Scale& scale) {
  const auto specs = paper_dataset_specs(scale.dataset_scale);
  GSOUP_CHECK_MSG(preset >= 0 && preset < 4, "preset out of range");
  return generate_dataset(specs[preset]);
}

ModelConfig cell_model_config(Arch arch, const Dataset& data) {
  ModelConfig cfg;
  cfg.arch = arch;
  cfg.in_dim = data.feature_dim();
  cfg.out_dim = data.num_classes;
  cfg.num_layers = 2;
  cfg.dropout = 0.5f;
  switch (arch) {
    case Arch::kGcn:
      cfg.hidden_dim = 64;
      break;
    case Arch::kSage:
      cfg.hidden_dim = 64;
      cfg.dropout = 0.3f;  // SAGE's dual path underfits noisy features
                           // at 0.5 input dropout
      break;
    case Arch::kGat:
      // Smaller hidden per head, 4 concatenated heads (§VI-A notes the
      // smaller GAT hidden size).
      cfg.hidden_dim = 16;
      cfg.heads = 4;
      cfg.dropout = 0.4f;
      break;
  }
  return cfg;
}

namespace {

std::string cell_tag(int preset, Arch arch, const Scale& scale) {
  std::ostringstream os;
  os << preset_name(preset) << "-" << arch_name(arch) << "-" << scale.tag();
  return os.str();
}

TrainConfig ingredient_train_config(const Scale& scale, Arch arch) {
  TrainConfig tc;
  tc.epochs = scale.ingredient_epochs;
  tc.optimizer.kind = OptimizerKind::kAdam;
  tc.optimizer.weight_decay = 5e-5;
  tc.schedule.base_lr = 0.01;
  tc.seed = 1234;
  tc.keep_best = true;
  tc.eval_every = 2;
  if (arch == Arch::kSage) {
    // SAGE's dual self/neighbour path needs a hotter, longer recipe to
    // reach its band (cross-validated with tools/calibrate_datasets).
    tc.schedule.base_lr = 0.05;
    tc.epochs = scale.ingredient_epochs * 5 / 2;
  }
  return tc;
}

}  // namespace

std::vector<Ingredient> get_ingredients(const GnnModel& model,
                                        const GraphContext& ctx,
                                        const Dataset& data,
                                        const Scale& scale) {
  std::ostringstream tag;
  tag << data.name << "-" << arch_name(model.config().arch) << "-"
      << scale.tag();
  if (auto cached = io::load_ingredients(scale.cache_dir, tag.str())) {
    if (static_cast<std::int64_t>(cached->size()) == scale.ingredients) {
      return std::move(*cached);
    }
  }
  GSOUP_LOG_INFO << "training " << scale.ingredients << " ingredients for "
                 << tag.str();
  FarmConfig farm;
  farm.num_ingredients = scale.ingredients;
  farm.num_workers = std::min(scale.workers, scale.ingredients);
  farm.train = ingredient_train_config(scale, model.config().arch);
  farm.init_seed = 42;
  FarmResult result = train_ingredients(model, ctx, data, farm);
  io::save_ingredients(scale.cache_dir, tag.str(), result.ingredients);
  return std::move(result.ingredients);
}

CellResult run_cell(int preset, Arch arch, const Scale& scale) {
  const std::string tag = cell_tag(preset, arch, scale);
  if (auto cached = load_cell_result(scale.cache_dir, tag)) {
    return std::move(*cached);
  }

  // The locality layer, applied once per cell: build the GraphPlan from
  // the generated graph, move the whole dataset into plan space, and hand
  // the plan to the context so every ingredient epoch, soup evaluation
  // and PLS pass reuses the same cached SpMM layout. All reported metrics
  // are split aggregates, which are permutation-invariant.
  Dataset data = make_dataset(preset, scale);
  const auto plan =
      std::make_shared<const graph::GraphPlan>(data.graph, scale.reorder);
  if (plan->active()) data = plan->apply(data);
  const GnnModel model(cell_model_config(arch, data));
  const GraphContext ctx(plan, arch);
  const auto ingredients = get_ingredients(model, ctx, data, scale);

  CellResult cell;
  cell.dataset = data.name;
  cell.arch = arch_name(arch);
  cell.num_ingredients = static_cast<std::int64_t>(ingredients.size());
  {
    double sum = 0, sum_sq = 0, val_sum = 0;
    double mn = 1.0, mx = 0.0;
    for (const auto& ing : ingredients) {
      sum += ing.test_acc;
      sum_sq += ing.test_acc * ing.test_acc;
      val_sum += ing.val_acc;
      mn = std::min(mn, ing.test_acc);
      mx = std::max(mx, ing.test_acc);
    }
    const double n = static_cast<double>(ingredients.size());
    cell.ingredients_test_mean = sum / n;
    cell.ingredients_val_mean = val_sum / n;
    cell.ingredients_test_std = std::sqrt(
        std::max(0.0, sum_sq / n - cell.ingredients_test_mean *
                                       cell.ingredients_test_mean));
    cell.ingredients_test_min = mn;
    cell.ingredients_test_max = mx;
  }

  const SoupContext sctx{model, ctx, data, ingredients};
  for (std::int64_t trial = 0; trial < scale.trials; ++trial) {
    const std::uint64_t soup_seed = 1000 + 97 * trial;

    UniformSouper us;
    GisSouper gis({.granularity = scale.gis_granularity});

    LearnedSoupConfig ls_cfg;
    ls_cfg.epochs = scale.ls_epochs;
    ls_cfg.lr = 0.2;
    ls_cfg.momentum = 0.9;
    ls_cfg.seed = soup_seed;
    LearnedSouper ls(ls_cfg);

    PlsConfig pls_cfg;
    pls_cfg.base = ls_cfg;
    pls_cfg.base.epochs = scale.pls_epochs;
    pls_cfg.num_parts = scale.pls_parts;
    pls_cfg.budget = scale.pls_budget;
    PartitionLearnedSouper pls(data, pls_cfg);

    Souper* soupers[] = {&us, &gis, &ls, &pls};
    for (Souper* souper : soupers) {
      const SoupReport report = run_souper(*souper, sctx);
      cell.measurements.push_back({report.method, report.val_acc,
                                   report.test_acc, report.seconds,
                                   report.peak_bytes,
                                   report.mix_peak_bytes});
      GSOUP_LOG_INFO << tag << " trial " << trial << " " << report.method
                     << ": test " << report.test_acc << ", "
                     << report.seconds << "s";
    }
  }

  save_cell_result(scale.cache_dir, tag, cell);
  return cell;
}

std::vector<CellResult> run_matrix(const Scale& scale) {
  std::vector<CellResult> cells;
  for (const Arch arch : paper_archs()) {
    for (int preset = 0; preset < 4; ++preset) {
      cells.push_back(run_cell(preset, arch, scale));
    }
  }
  return cells;
}

MethodSummary CellResult::summarize(const std::string& method) const {
  MethodSummary s;
  s.method = method;
  double n = 0;
  double test_sum = 0, test_sq = 0, sec_sum = 0, sec_sq = 0;
  for (const auto& m : measurements) {
    if (m.method != method) continue;
    ++n;
    test_sum += m.test_acc;
    test_sq += m.test_acc * m.test_acc;
    sec_sum += m.seconds;
    sec_sq += m.seconds * m.seconds;
    s.val_mean += m.val_acc;
    s.peak_bytes_mean += static_cast<double>(m.peak_bytes);
    s.mix_peak_bytes_mean += static_cast<double>(m.mix_peak_bytes);
  }
  GSOUP_CHECK_MSG(n > 0, "no measurements for method " << method);
  s.test_mean = test_sum / n;
  s.test_std = std::sqrt(std::max(0.0, test_sq / n - s.test_mean * s.test_mean));
  s.seconds_mean = sec_sum / n;
  s.seconds_std =
      std::sqrt(std::max(0.0, sec_sq / n - s.seconds_mean * s.seconds_mean));
  s.val_mean /= n;
  s.peak_bytes_mean /= n;
  s.mix_peak_bytes_mean /= n;
  return s;
}

std::vector<std::string> CellResult::methods() const {
  std::vector<std::string> out;
  for (const auto& m : measurements) {
    if (std::find(out.begin(), out.end(), m.method) == out.end()) {
      out.push_back(m.method);
    }
  }
  return out;
}

}  // namespace gsoup::bench
