// Shared experiment runner for the benchmark binaries.
//
// The paper's evaluation is a 3-architecture × 4-dataset matrix; every
// table and figure is a projection of the same runs (accuracy → Table II,
// time → Table III/Fig. 4a, memory → Fig. 4b, distribution → Fig. 3).
// This harness trains (or loads cached) ingredients per cell, runs every
// souping strategy `trials` times, and caches the measurements so each
// bench binary pays only for what is missing.
//
// Scale knobs (environment variables):
//   GSOUP_INGREDIENTS       ingredient count per cell      (default 8)
//   GSOUP_TRIALS            soups averaged per cell        (default 2)
//   GSOUP_SCALE             dataset scale factor           (default 1.0)
//   GSOUP_INGREDIENT_EPOCHS ingredient training epochs     (default 50)
//   GSOUP_GIS_GRANULARITY   GIS ratio-grid size            (default 50)
//   GSOUP_LS_EPOCHS         LS epochs                      (default 60)
//   GSOUP_PLS_EPOCHS        PLS epochs                     (default 80)
//   GSOUP_WORKERS           ingredient-farm worker threads (default:
//                           hardware concurrency, capped by ingredients)
//   GSOUP_REORDER           graph locality reordering for every cell:
//                           none|degree|rcm                (default none)
//   GSOUP_CACHE_DIR         ingredient/result cache        (.gsoup-cache)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/soup.hpp"
#include "graph/generator.hpp"
#include "graph/locality.hpp"
#include "nn/model.hpp"
#include "train/ingredient_farm.hpp"

namespace gsoup::bench {

/// Experiment-wide scale configuration (from environment).
struct Scale {
  std::int64_t ingredients = 8;
  std::int64_t trials = 2;
  double dataset_scale = 1.0;
  std::int64_t ingredient_epochs = 50;
  std::int64_t gis_granularity = 50;
  std::int64_t ls_epochs = 60;
  std::int64_t pls_epochs = 80;
  std::int64_t pls_parts = 32;   ///< K
  std::int64_t pls_budget = 8;   ///< R
  /// Ingredient-farm workers W: Phase 1 drains the N training jobs with W
  /// threads, realising the paper's T_total ≈ (N/W) · T_single (Eq. 1).
  std::int64_t workers = 2;
  /// Graph locality reordering (GraphPlan) applied to every cell's
  /// dataset + context before training. Accuracy aggregates are
  /// permutation-invariant; this is purely a kernel-locality knob.
  graph::Reorder reorder = graph::Reorder::kNone;
  std::string cache_dir;

  static Scale from_env();
  /// Tag fragment identifying this scale (cache keying).
  std::string tag() const;
};

/// One measurement of one souping strategy.
struct MethodMeasurement {
  std::string method;
  double val_acc = 0.0;
  double test_acc = 0.0;
  double seconds = 0.0;
  std::size_t peak_bytes = 0;      ///< ingredients + mixing peak
  std::size_t mix_peak_bytes = 0;  ///< mixing peak above entry
};

/// Aggregated mean ± stddev over trials.
struct MethodSummary {
  std::string method;
  double test_mean = 0, test_std = 0;
  double val_mean = 0;
  double seconds_mean = 0, seconds_std = 0;
  double peak_bytes_mean = 0;
  double mix_peak_bytes_mean = 0;
};

/// One cell of the experiment matrix.
struct CellResult {
  std::string dataset;
  std::string arch;
  std::int64_t num_ingredients = 0;
  double ingredients_test_mean = 0;
  double ingredients_test_std = 0;
  double ingredients_val_mean = 0;
  double ingredients_test_min = 0;
  double ingredients_test_max = 0;
  std::vector<MethodMeasurement> measurements;

  MethodSummary summarize(const std::string& method) const;
  std::vector<std::string> methods() const;
};

/// Architectures in paper order.
std::vector<Arch> paper_archs();

/// Model configuration used for (arch, dataset) cells. GAT uses a smaller
/// hidden size with 4 concatenated heads, mirroring the paper's setup
/// notes (§VI-A).
ModelConfig cell_model_config(Arch arch, const Dataset& data);

/// Dataset for preset index 0..3 (Flickr-, arxiv-, Reddit-, products-like)
/// at the given scale.
Dataset make_dataset(int preset, const Scale& scale);

/// Ingredients for one cell, loading from the cache when possible.
std::vector<Ingredient> get_ingredients(const GnnModel& model,
                                        const GraphContext& ctx,
                                        const Dataset& data,
                                        const Scale& scale);

/// Full cell: ingredients + all strategies × trials. Cached on disk.
/// `methods` selects a subset (empty = US, GIS, LS, PLS).
CellResult run_cell(int preset, Arch arch, const Scale& scale);

/// All 12 cells (lazy; cached).
std::vector<CellResult> run_matrix(const Scale& scale);

/// Short names used in tables.
std::string preset_name(int preset);

}  // namespace gsoup::bench
