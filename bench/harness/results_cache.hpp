// Plain-text cache for cell measurements so every bench binary shares one
// set of souping runs. Format: one whitespace-separated record per line.
#pragma once

#include <optional>
#include <string>

#include "harness/experiment.hpp"

namespace gsoup::bench {

std::optional<CellResult> load_cell_result(const std::string& cache_dir,
                                           const std::string& tag);
void save_cell_result(const std::string& cache_dir, const std::string& tag,
                      const CellResult& cell);

}  // namespace gsoup::bench
