#include "harness/results_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace gsoup::bench {

namespace fs = std::filesystem;

namespace {
std::string file_for(const std::string& cache_dir, const std::string& tag) {
  return (fs::path(cache_dir) / (tag + ".cell")).string();
}
}  // namespace

std::optional<CellResult> load_cell_result(const std::string& cache_dir,
                                           const std::string& tag) {
  std::ifstream is(file_for(cache_dir, tag));
  if (!is.good()) return std::nullopt;
  CellResult cell;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "cell") {
      ls >> cell.dataset >> cell.arch >> cell.num_ingredients >>
          cell.ingredients_test_mean >> cell.ingredients_test_std >>
          cell.ingredients_val_mean >> cell.ingredients_test_min >>
          cell.ingredients_test_max;
    } else if (kind == "m") {
      MethodMeasurement m;
      ls >> m.method >> m.val_acc >> m.test_acc >> m.seconds >>
          m.peak_bytes >> m.mix_peak_bytes;
      if (!ls.fail()) cell.measurements.push_back(std::move(m));
    }
  }
  if (cell.dataset.empty() || cell.measurements.empty()) return std::nullopt;
  GSOUP_LOG_INFO << "loaded cached cell " << tag << " ("
                 << cell.measurements.size() << " measurements)";
  return cell;
}

void save_cell_result(const std::string& cache_dir, const std::string& tag,
                      const CellResult& cell) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  std::ofstream os(file_for(cache_dir, tag));
  if (!os.good()) {
    GSOUP_LOG_WARN << "cannot write cell cache for " << tag;
    return;
  }
  os << "cell " << cell.dataset << " " << cell.arch << " "
     << cell.num_ingredients << " " << cell.ingredients_test_mean << " "
     << cell.ingredients_test_std << " " << cell.ingredients_val_mean << " "
     << cell.ingredients_test_min << " " << cell.ingredients_test_max
     << "\n";
  for (const auto& m : cell.measurements) {
    os << "m " << m.method << " " << m.val_acc << " " << m.test_acc << " "
       << m.seconds << " " << m.peak_bytes << " " << m.mix_peak_bytes
       << "\n";
  }
}

}  // namespace gsoup::bench
