// Serving-path benchmarks with a machine-readable artifact.
//
// Measures the inference subsystem the way it is deployed: full-graph
// forward throughput, single-node query latency, batched (64-way) query
// throughput and the batching speedup, and the end-to-end batch server
// under concurrent clients. Writes BENCH_serving.json (schema
// gsoup-bench-serving/v1, see README.md); the committed artifact is the
// serving baseline later scaling PRs are compared against with
// tools/bench_compare.
//
// Weights are Glorot-random: accuracy is irrelevant to throughput, and
// skipping ingredient training keeps the bench deterministic and fast.
//
// Usage: bench_serving [--smoke] [--out PATH]
//   --smoke   tiny graph + few requests (CI artifact)
//   --out     artifact path (default BENCH_serving.json in the CWD)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ag/value.hpp"
#include "graph/generator.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/shard_server.hpp"
#include "serve/snapshot.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace gsoup;

struct BenchConfig {
  bool smoke = false;
  std::string out = "BENCH_serving.json";
  std::int64_t single_probes = 512;
  std::int64_t batch_rounds = 64;
  std::int64_t server_requests = 4096;
  double min_seconds = 0.2;
};

struct Record {
  std::string bench;    ///< "full_forward" | "engine_query" | "server"
  std::string arch;
  std::string shape;    ///< "n=...,nnz=..."
  /// Request batch size for server-style records. The full_forward_* fp32/
  /// fp16 pair records repurpose it as the hidden dim: unlike the node
  /// count it is identical in smoke and full mode, so the record key
  /// (bench|arch|batch|workers) matches between a CI smoke artifact and
  /// the committed full-mode baseline. The node count stays in `shape`.
  std::int64_t batch = 0;
  std::int64_t workers = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double batching_speedup = 0.0;
  /// server_sharded_K only: qps relative to the same-run single-engine
  /// "server" record. Run-relative like the kernel artifact's
  /// speedup_vs_naive, so the CI gate survives hardware differences
  /// between the baseline box and hosted runners.
  double vs_single = 0.0;
  /// *_fp16 records only: qps relative to the same-run fp32 twin of the
  /// same bench (run-relative, so the CI gate survives hardware
  /// differences between the baseline box and hosted runners).
  double speedup_vs_fp32 = 0.0;
  /// *_fp16 full-forward records only: accuracy parity vs the same-run
  /// fp32 logits. parity_max_delta is max |logit delta| over every
  /// (node, class); parity_argmax is the argmax-match fraction over the
  /// decisive nodes (fp32 top-2 margin > 2x the gated delta tolerance —
  /// a flip inside the tolerance band is numerics, not a bug). Both are
  /// asserted in-binary (see check_parity) and parity_argmax is gated in
  /// CI, so a broken half kernel fails the bench run itself.
  double parity_argmax = 0.0;
  double parity_max_delta = 0.0;
};

/// Accuracy parity of a half-precision logit matrix against its fp32 twin.
struct Parity {
  double max_delta = 0.0;   ///< max |ref - half| over all (node, class)
  double tolerance = 0.0;   ///< gated bound: kTolScale * max(1, linf(ref))
  double argmax_frac = 1.0; ///< argmax match over decisive nodes
  std::int64_t decisive = 0;
  std::int64_t flipped = 0;
};

/// The gated delta tolerance, relative to the fp32 logit magnitude: fp16
/// storage quantisation contributes ~2^-11 relative error per tensor and
/// two layers of storage round-trips stack to low-1e-3 relative — 2e-2 is
/// an order of magnitude of headroom while still catching any kernel that
/// widens, packs or accumulates wrongly (those miss by 1e1, not 1e-3).
constexpr double kParityTolScale = 2e-2;

Parity logit_parity(const Tensor& ref, const Tensor& half) {
  const std::int64_t n = ref.shape()[0];
  const std::int64_t d = ref.shape()[1];
  Parity p;
  double linf = 0.0;
  for (std::int64_t i = 0; i < n * d; ++i) {
    linf = std::max(linf, static_cast<double>(std::fabs(ref.data()[i])));
    p.max_delta = std::max(
        p.max_delta,
        static_cast<double>(std::fabs(ref.data()[i] - half.data()[i])));
  }
  p.tolerance = kParityTolScale * std::max(1.0, linf);
  std::int64_t matched = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = ref.data() + i * d;
    const std::int64_t best = ops::argmax_row(row, d);
    float second = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < d; ++j) {
      if (j != best) second = std::max(second, row[j]);
    }
    if (static_cast<double>(row[best] - second) <= 2.0 * p.tolerance) continue;
    ++p.decisive;
    if (ops::argmax_row(half.data() + i * d, d) == best) ++matched;
  }
  p.flipped = p.decisive - matched;
  p.argmax_frac =
      p.decisive > 0 ? static_cast<double>(matched) /
                           static_cast<double>(p.decisive)
                     : 1.0;
  return p;
}

/// In-binary parity gate: every decisive argmax must match and the max
/// logit delta must sit inside the gated tolerance. Parity is fully
/// deterministic (fixed seeds, deterministic kernels), so a failure here
/// is a numerics bug, never noise — it fails the bench run outright.
bool check_parity(const char* bench, const char* arch, const Parity& p) {
  if (p.flipped == 0 && p.max_delta <= p.tolerance) return true;
  std::fprintf(stderr,
               "bench_serving: %s %s parity FAILED: max delta %.3e "
               "(tolerance %.3e), %lld of %lld decisive argmax flipped\n",
               arch, bench, p.max_delta, p.tolerance,
               static_cast<long long>(p.flipped),
               static_cast<long long>(p.decisive));
  return false;
}


ModelConfig bench_model_config(Arch arch, const Dataset& data) {
  ModelConfig cfg;
  cfg.arch = arch;
  cfg.in_dim = data.feature_dim();
  cfg.out_dim = data.num_classes;
  cfg.num_layers = 2;
  cfg.hidden_dim = arch == Arch::kGat ? 16 : 64;
  cfg.heads = 4;
  return cfg;
}

void bench_arch(const BenchConfig& cfg, Arch arch, const Dataset& data,
                std::vector<Record>& records) {
  const ModelConfig mcfg = bench_model_config(arch, data);
  const GnnModel model(mcfg);
  Rng rng(41);
  const ParamStore params = model.init_params(rng);
  auto ctx = std::make_shared<const GraphContext>(data.graph, arch);
  const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                            ",nnz=" + std::to_string(data.num_edges());

  serve::InferenceEngine engine(mcfg, params, ctx, data.features);
  Tensor out1 = Tensor::empty({1, mcfg.out_dim});
  Tensor out64 = Tensor::empty({64, mcfg.out_dim});

  // ---- Full-graph forward throughput (nodes classified per second). ----
  {
    engine.full_logits();  // warm-up
    Timer t;
    std::int64_t iters = 0;
    while (iters < 3 || t.seconds() < cfg.min_seconds) {
      engine.invalidate();
      engine.full_logits();
      ++iters;
    }
    const double per_pass = t.seconds() / static_cast<double>(iters);
    Record r{"full_forward", arch_name(arch), shape};
    r.batch = data.num_nodes();
    r.qps = static_cast<double>(data.num_nodes()) / per_pass;
    r.p50_ms = r.p99_ms = per_pass * 1e3;
    records.push_back(r);
    std::printf("%-6s full_forward    %9.0f nodes/s (%.2f ms/pass)\n",
                arch_name(arch), r.qps, per_pass * 1e3);
  }

  // ---- Tape forward under NoGradGuard: what the engine's executor mode
  // replaces. Committed alongside full_forward so the executor-vs-tape
  // delta is inspectable in same-machine baseline runs (the kernel-level
  // twin records live in BENCH_kernels.json and are CI-gated there).
  {
    const ag::Value fvalue = ag::constant(data.features);
    const ParamMap leaves = as_leaves(params, /*requires_grad=*/false);
    const auto tape_pass = [&] {
      ag::NoGradGuard guard;
      return model.forward(*ctx, fvalue, leaves);
    };
    tape_pass();  // warm-up
    Timer t;
    std::int64_t iters = 0;
    while (iters < 3 || t.seconds() < cfg.min_seconds) {
      tape_pass();
      ++iters;
    }
    const double per_pass = t.seconds() / static_cast<double>(iters);
    Record r{"full_forward_tape", arch_name(arch), shape};
    r.batch = data.num_nodes();
    r.qps = static_cast<double>(data.num_nodes()) / per_pass;
    r.p50_ms = r.p99_ms = per_pass * 1e3;
    records.push_back(r);
    std::printf("%-6s full_fwd_tape   %9.0f nodes/s (%.2f ms/pass)\n",
                arch_name(arch), r.qps, per_pass * 1e3);
  }

  // ---- Single-node queries (exact subgraph path). ----------------------
  double single_qps = 0.0;
  {
    Rng node_rng(7);
    std::int64_t id =
        static_cast<std::int64_t>(node_rng.uniform_int(data.num_nodes()));
    engine.query(std::span<const std::int64_t>(&id, 1), out1);  // warm-up
    std::vector<double> lat_ms;
    lat_ms.reserve(static_cast<std::size_t>(cfg.single_probes));
    Timer wall;
    for (std::int64_t i = 0; i < cfg.single_probes; ++i) {
      id = static_cast<std::int64_t>(node_rng.uniform_int(data.num_nodes()));
      Timer t;
      engine.query(std::span<const std::int64_t>(&id, 1), out1);
      lat_ms.push_back(t.milliseconds());
    }
    single_qps = static_cast<double>(cfg.single_probes) / wall.seconds();
    std::sort(lat_ms.begin(), lat_ms.end());
    Record r{"engine_query", arch_name(arch), shape};
    r.batch = 1;
    r.qps = single_qps;
    r.p50_ms = percentile_sorted(lat_ms, 0.50);
    r.p99_ms = percentile_sorted(lat_ms, 0.99);
    records.push_back(r);
    std::printf("%-6s query batch=1   %9.0f QPS (p50 %.3f ms, p99 %.3f ms)\n",
                arch_name(arch), r.qps, r.p50_ms, r.p99_ms);
  }

  // ---- 64-way batched queries: the amortisation the server exploits. ---
  {
    Rng node_rng(11);
    std::vector<std::int64_t> nodes(64);
    for (auto& n : nodes) {
      n = static_cast<std::int64_t>(node_rng.uniform_int(data.num_nodes()));
    }
    engine.query(nodes, out64);  // warm-up
    std::vector<double> lat_ms;
    Timer wall;
    std::int64_t rounds = 0;
    while (rounds < cfg.batch_rounds || wall.seconds() < cfg.min_seconds) {
      for (auto& n : nodes) {
        n = static_cast<std::int64_t>(
            node_rng.uniform_int(data.num_nodes()));
      }
      Timer t;
      engine.query(nodes, out64);
      lat_ms.push_back(t.milliseconds());
      ++rounds;
    }
    const double qps =
        static_cast<double>(64 * rounds) / wall.seconds();
    std::sort(lat_ms.begin(), lat_ms.end());
    Record r{"engine_query", arch_name(arch), shape};
    r.batch = 64;
    r.qps = qps;
    r.p50_ms = percentile_sorted(lat_ms, 0.50);
    r.p99_ms = percentile_sorted(lat_ms, 0.99);
    r.batching_speedup = single_qps > 0.0 ? qps / single_qps : 0.0;
    records.push_back(r);
    std::printf(
        "%-6s query batch=64  %9.0f QPS (p50 %.3f ms, %.2fx vs batch=1)\n",
        arch_name(arch), r.qps, r.p50_ms, r.batching_speedup);
  }

  // ---- End-to-end batch server under concurrent clients. ---------------
  {
    const serve::Snapshot snap =
        serve::make_snapshot(mcfg, params, data, "bench-random");
    serve::ServerConfig scfg;
    scfg.workers = 2;
    scfg.max_batch = 64;
    scfg.max_delay_ms = 2.0;
    serve::BatchServer server(snap, ctx, data.features, scfg);

    constexpr std::int64_t kClients = 4;
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    const serve::ServerStats stats = server.stats();
    Record r{"server", arch_name(arch), shape};
    r.batch = scfg.max_batch;
    r.workers = static_cast<std::int64_t>(scfg.workers);
    r.qps = static_cast<double>(stats.queries) / seconds;
    r.p50_ms = stats.p50_latency_ms;
    r.p99_ms = stats.p99_latency_ms;
    records.push_back(r);
    std::printf(
        "%-6s server w=2 b=64 %9.0f QPS (p50 %.3f ms, p99 %.3f ms, mean "
        "batch %.1f)\n",
        arch_name(arch), r.qps, r.p50_ms, r.p99_ms, stats.mean_batch);
  }
}

// ---- Reduced-precision serving. -------------------------------------------
//
// fp16 twins of the full-graph forward (every arch at its default width,
// plus gcn/sage at hidden=128 where the GEMM panels dominate) and of the
// end-to-end gcn batch server. The full-forward pairs run on their own
// dataset — the arxiv-like family at 20x the shared serving graph
// (n=40000, ~15 MB feature slab, still ~4x smaller than real arxiv) —
// because halved storage pays exactly when the per-edge row gathers miss
// cache: on the 2000-node shared graph every slab is L2-resident and the
// pass is GEMM-compute-bound, which understates the storage-precision
// gain the records exist to track. The
// fp32 twin of every pair is measured in the same run on the same data,
// so speedup_vs_fp32 stays a fair like-for-like ratio at either scale.
// Each *_fp16 record carries
//  - speedup_vs_fp32: qps relative to the same-run fp32 twin
//    (run-relative, so the CI gate survives hardware differences);
//  - parity_argmax / parity_max_delta: the accuracy-parity harness vs the
//    same-run fp32 logits (see logit_parity). Parity is also asserted
//    in-binary, so a half kernel that goes numerically wrong fails the
//    bench run, not just the offline gate.
// These records key their `batch` column on the hidden dim rather than
// the node count: smoke and full runs then produce identical record keys,
// which is what lets the CI smoke artifact gate speedup_vs_fp32 and
// parity_argmax against the committed full-mode baseline (the node count
// still lives in the shape string).
// Storage is fp16 end to end (features, weight panels, inter-layer
// activations); accumulation stays fp32, which is why the parity band is
// 1e-3-scale and not 1e-1. bf16 takes the identical code path (only the
// codec differs) and is covered by tests/test_half.cpp rather than a
// third bench column.
bool bench_half(const BenchConfig& cfg, const Dataset& data,
                std::vector<Record>& records) {
  const auto lookup_qps = [&](const char* bench, const char* arch) {
    for (const auto& r : records) {
      if (r.bench == bench && r.arch == arch) return r.qps;
    }
    return 0.0;
  };
  // A full pass on the 40000-node graph runs 50-300 ms, so the global
  // 0.2 s floor would time only 2-3 iterations — too few for the
  // speedup_vs_fp32 ratio that gets committed as a baseline and gated.
  // Hold each side for ~1 s instead, and report the MINIMUM pass time
  // rather than the mean: these passes are long enough that scheduler /
  // co-tenant interference lands inside individual iterations, and the
  // min is the standard interference-robust estimator. Both sides of
  // every ratio use the same statistic, so the ratio stays fair.
  const double min_seconds = cfg.smoke ? cfg.min_seconds : 1.0;
  const auto time_full_pass = [&](serve::InferenceEngine& engine) {
    engine.full_logits();  // warm-up
    Timer total;
    double best = std::numeric_limits<double>::infinity();
    std::int64_t iters = 0;
    while (iters < 3 || total.seconds() < min_seconds) {
      engine.invalidate();
      Timer t;
      engine.full_logits();
      best = std::min(best, t.seconds());
      ++iters;
    }
    return best;
  };
  bool parity_ok = true;

  const Dataset hdata =
      generate_dataset(arxiv_like_spec(cfg.smoke ? 0.1 : 10.0));
  const std::string shape = "n=" + std::to_string(hdata.num_nodes()) +
                            ",nnz=" + std::to_string(hdata.num_edges());

  struct HalfCase {
    Arch arch;
    std::int64_t hidden;      ///< 0 = the arch's bench default
    const char* fp32_bench;   ///< same-run fp32 twin record
    const char* fp16_bench;
  };
  const HalfCase cases[] = {
      {Arch::kGcn, 0, "full_forward_fp32", "full_forward_fp16"},
      {Arch::kSage, 0, "full_forward_fp32", "full_forward_fp16"},
      {Arch::kGat, 0, "full_forward_fp32", "full_forward_fp16"},
      {Arch::kGcn, 128, "full_forward_d128", "full_forward_d128_fp16"},
      {Arch::kSage, 128, "full_forward_d128", "full_forward_d128_fp16"},
  };
  for (const HalfCase& c : cases) {
    ModelConfig mcfg = bench_model_config(c.arch, hdata);
    if (c.hidden > 0) mcfg.hidden_dim = c.hidden;
    const GnnModel model(mcfg);
    Rng rng(41);
    const ParamStore params = model.init_params(rng);
    auto ctx = std::make_shared<const GraphContext>(hdata.graph, c.arch);
    const std::int64_t n = hdata.num_nodes();

    serve::InferenceEngine engine32(mcfg, params, ctx, hdata.features);
    const double fp32_pass = time_full_pass(engine32);
    {
      Record r{c.fp32_bench, arch_name(c.arch), shape};
      r.batch = mcfg.hidden_dim;
      r.qps = static_cast<double>(n) / fp32_pass;
      r.p50_ms = r.p99_ms = fp32_pass * 1e3;
      records.push_back(r);
      std::printf("%-6s fwd d=%-3lld fp32 %9.0f nodes/s (%.2f ms/pass)\n",
                  arch_name(c.arch), static_cast<long long>(mcfg.hidden_dim),
                  r.qps, fp32_pass * 1e3);
    }
    const double fp32_qps = static_cast<double>(n) / fp32_pass;

    serve::InferenceEngine engine16(mcfg, params, ctx, hdata.features,
                                    serve::QueryMode::kSubgraph,
                                    serve::FeatureSpace::kOriginal,
                                    Precision::kFp16);
    const double per_pass = time_full_pass(engine16);
    const Parity parity =
        logit_parity(engine32.full_logits(), engine16.full_logits());
    parity_ok &= check_parity(c.fp16_bench, arch_name(c.arch), parity);

    Record r{c.fp16_bench, arch_name(c.arch), shape};
    r.batch = mcfg.hidden_dim;
    r.qps = static_cast<double>(n) / per_pass;
    r.p50_ms = r.p99_ms = per_pass * 1e3;
    r.speedup_vs_fp32 = fp32_qps > 0.0 ? r.qps / fp32_qps : 0.0;
    r.parity_argmax = parity.argmax_frac;
    r.parity_max_delta = parity.max_delta;
    records.push_back(r);
    std::printf(
        "%-6s fwd d=%-3lld fp16 %9.0f nodes/s (%.2fx of fp32, max delta "
        "%.1e, argmax %lld/%lld)\n",
        arch_name(c.arch), static_cast<long long>(mcfg.hidden_dim), r.qps,
        r.speedup_vs_fp32, parity.max_delta,
        static_cast<long long>(parity.decisive - parity.flipped),
        static_cast<long long>(parity.decisive));
  }

  // End-to-end fp16 batch server (gcn): same harness, knobs, and shared
  // dataset as the bench_arch "server" record, ServerConfig::precision
  // flipped — so its speedup_vs_fp32 is the dispatch/batching-diluted
  // number, complementing the kernel-dominated full-forward pairs above.
  {
    const std::string srv_shape = "n=" + std::to_string(data.num_nodes()) +
                                  ",nnz=" + std::to_string(data.num_edges());
    const ModelConfig mcfg = bench_model_config(Arch::kGcn, data);
    const GnnModel model(mcfg);
    Rng rng(41);
    const ParamStore params = model.init_params(rng);
    auto ctx = std::make_shared<const GraphContext>(data.graph, Arch::kGcn);
    const serve::Snapshot snap =
        serve::make_snapshot(mcfg, params, data, "bench-random");
    serve::ServerConfig scfg;
    scfg.workers = 2;
    scfg.max_batch = 64;
    scfg.max_delay_ms = 2.0;
    scfg.precision = Precision::kFp16;
    serve::BatchServer server(snap, ctx, data.features, scfg);
    constexpr std::int64_t kClients = 4;
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    const serve::ServerStats stats = server.stats();
    Record r{"server_fp16", "gcn", srv_shape};
    r.batch = scfg.max_batch;
    r.workers = static_cast<std::int64_t>(scfg.workers);
    r.qps = static_cast<double>(stats.queries) / seconds;
    r.p50_ms = stats.p50_latency_ms;
    r.p99_ms = stats.p99_latency_ms;
    const double fp32_qps = lookup_qps("server", arch_name(Arch::kGcn));
    r.speedup_vs_fp32 = fp32_qps > 0.0 ? r.qps / fp32_qps : 0.0;
    records.push_back(r);
    std::printf("gcn    server fp16     %9.0f QPS (p50 %.3f ms, %.2fx of "
                "fp32 server)\n",
                r.qps, r.p50_ms, r.speedup_vs_fp32);
  }
  return parity_ok;
}

// ---- Sharded server throughput. -------------------------------------------
//
// The single-process stand-in for the scale-out deployment: the graph is
// partitioned (multilevel, halo = num_layers), each shard gets its own
// engine over a shard-local CSR, and the router splits client batches by
// owner shard. Same client harness and batch knobs as the "server" bench,
// so server vs server_sharded_K is the sharding overhead (routing, halo
// replication in the working set, per-shard batch fragmentation) at a
// glance. Answers are bit-identical to the single engine — tests/test_shard
// proves that — so this record is pure throughput.
void bench_sharded(const BenchConfig& cfg, const Dataset& data,
                   std::vector<Record>& records) {
  const ModelConfig mcfg = bench_model_config(Arch::kGcn, data);
  const GnnModel model(mcfg);
  Rng rng(53);
  const ParamStore params = model.init_params(rng);
  const serve::Snapshot snap =
      serve::make_snapshot(mcfg, params, data, "bench-sharded");
  const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                            ",nnz=" + std::to_string(data.num_edges());
  double single_qps = 0.0;
  for (const auto& rec : records) {
    if (rec.bench == "server" && rec.arch == arch_name(Arch::kGcn)) {
      single_qps = rec.qps;
    }
  }

  for (const std::int64_t num_shards : {2, 4}) {
    serve::ShardServerOptions sopt;
    sopt.num_shards = num_shards;
    sopt.partitioner = "multilevel";
    sopt.server.workers = 2;
    sopt.server.max_batch = 64;
    sopt.server.max_delay_ms = 2.0;
    const ShardSet shards = serve::make_serving_shards(data.graph, mcfg, sopt);
    serve::ShardedServer server(snap, shards, data.features, sopt);

    constexpr std::int64_t kClients = 4;
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    const serve::ShardedStats stats = server.stats();
    Record r{"server_sharded_" + std::to_string(num_shards), "gcn", shape};
    r.batch = sopt.server.max_batch;
    r.workers = static_cast<std::int64_t>(sopt.server.workers) * num_shards;
    r.qps = static_cast<double>(stats.total.queries) / seconds;
    r.p50_ms = stats.total.p50_latency_ms;
    r.p99_ms = stats.total.p99_latency_ms;
    r.vs_single = single_qps > 0.0 ? r.qps / single_qps : 0.0;
    records.push_back(r);
    const ShardStats sstats = shard_stats(shards);
    std::printf(
        "gcn    sharded k=%lld    %9.0f QPS (p50 %.3f ms, %.2fx of single, "
        "repl %.2fx)\n",
        static_cast<long long>(num_shards), r.qps, r.p50_ms, r.vs_single,
        sstats.replication_factor);
  }
}

// ---- Replicated serving. --------------------------------------------------
//
// Two records for the replication layer, both on 2 shards x R=2:
//  - server_replicated_r2: healthy replicated serving. vs_single against
//    the same-run single-engine record shows what doubling the engine
//    count per shard buys (more workers on the same shared shard state,
//    minus router/collector overhead).
//  - server_failover_goodput: the same server with one replica of shard 0
//    killed (p=1 exec failpoint) for the WHOLE run. Every query that
//    lands on the dead replica fails over to its sibling; the client sees
//    zero failures (drive_clients throws otherwise, so a regression that
//    loses queries fails the bench, not just the gate). qps is goodput
//    with half of one shard's capacity gone plus the failover detour —
//    the number bench_compare holds steady-state serving degradation to.
void bench_replicated(const BenchConfig& cfg, const Dataset& data,
                      std::vector<Record>& records) {
  const ModelConfig mcfg = bench_model_config(Arch::kGcn, data);
  const GnnModel model(mcfg);
  Rng rng(59);
  const ParamStore params = model.init_params(rng);
  const serve::Snapshot snap =
      serve::make_snapshot(mcfg, params, data, "bench-replicated");
  const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                            ",nnz=" + std::to_string(data.num_edges());
  double single_qps = 0.0;
  for (const auto& rec : records) {
    if (rec.bench == "server" && rec.arch == arch_name(Arch::kGcn)) {
      single_qps = rec.qps;
    }
  }

  serve::ShardServerOptions sopt;
  sopt.num_shards = 2;
  sopt.partitioner = "multilevel";
  sopt.replication_factor = 2;
  sopt.server.workers = 2;
  sopt.server.max_batch = 64;
  sopt.server.max_delay_ms = 2.0;
  const ShardSet shards = serve::make_serving_shards(data.graph, mcfg, sopt);
  constexpr std::int64_t kClients = 4;

  {
    serve::ShardedServer server(snap, shards, data.features, sopt);
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    const serve::ShardedStats stats = server.stats();
    Record r{"server_replicated_r2", "gcn", shape};
    r.batch = sopt.server.max_batch;
    r.workers = static_cast<std::int64_t>(sopt.server.workers) *
                sopt.num_shards * sopt.replication_factor;
    r.qps = static_cast<double>(stats.total.queries) / seconds;
    r.p50_ms = stats.total.p50_latency_ms;
    r.p99_ms = stats.total.p99_latency_ms;
    r.vs_single = single_qps > 0.0 ? r.qps / single_qps : 0.0;
    records.push_back(r);
    std::printf("gcn    replicated r=2   %9.0f QPS (p50 %.3f ms, %.2fx of "
                "single)\n",
                r.qps, r.p50_ms, r.vs_single);
  }

  {
    serve::ShardedServer server(snap, shards, data.features, sopt);
    failpoint::arm_from_string(serve::replica_exec_failpoint(0, 0) +
                               "=error");
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    failpoint::disarm(serve::replica_exec_failpoint(0, 0));
    const serve::ShardedStats stats = server.stats();
    Record r{"server_failover_goodput", "gcn", shape};
    r.batch = sopt.server.max_batch;
    r.workers = static_cast<std::int64_t>(sopt.server.workers) *
                sopt.num_shards * sopt.replication_factor;
    // Goodput: answers delivered per second (answered == accepted here —
    // drive_clients throws on any failure).
    r.qps = static_cast<double>(stats.answered) / seconds;
    r.p50_ms = stats.total.p50_latency_ms;
    r.p99_ms = stats.total.p99_latency_ms;
    r.vs_single = single_qps > 0.0 ? r.qps / single_qps : 0.0;
    records.push_back(r);
    std::printf("gcn    failover goodput %9.0f QPS (p50 %.3f ms, %.2fx of "
                "single, %llu failovers)\n",
                r.qps, r.p50_ms, r.vs_single,
                static_cast<unsigned long long>(stats.failovers));
  }
}

// ---- Overload goodput under both admission policies. ---------------------
//
// A delay failpoint pins batch service time, so the 16-client pipelined
// burst deterministically exceeds capacity and the bounded pending queue
// (max_pending=64) has to reject or shed. Clients retry rejected queries
// with exponential backoff until everything is answered; `qps` is therefore
// *goodput* — queries answered OK per wall-clock second while the server is
// saturated — which converges to the failpoint-pinned service rate
// (workers * max_batch / delay) and is the stable metric bench_compare can
// hold onto. Latency percentiles include queue wait under saturation.
void bench_overload(const BenchConfig& cfg, const Dataset& data,
                    std::vector<Record>& records) {
  const ModelConfig mcfg = bench_model_config(Arch::kGcn, data);
  const GnnModel model(mcfg);
  Rng rng(43);
  const ParamStore params = model.init_params(rng);
  auto ctx = std::make_shared<const GraphContext>(data.graph, Arch::kGcn);
  const serve::Snapshot snap =
      serve::make_snapshot(mcfg, params, data, "bench-overload");
  const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                            ",nnz=" + std::to_string(data.num_edges());

  struct Case {
    const char* bench;
    serve::AdmissionPolicy policy;
  };
  const Case cases[] = {
      {"server_overload_reject", serve::AdmissionPolicy::kRejectNew},
      {"server_overload_shed", serve::AdmissionPolicy::kShedOldest},
  };
  // No retries here on purpose: retry-until-admitted wall clock is
  // quantized by the exponential-backoff wave count and swings 2x between
  // runs. A single saturating burst is self-normalizing instead — drain
  // time scales with however many queries were admitted, so ok/seconds
  // converges to the failpoint-pinned service rate either way, and the
  // policies differentiate through the rejected counts and latency tails.
  // Full mode takes the median of three repeats to absorb scheduler noise.
  const int repeats = cfg.smoke ? 1 : 3;
  for (const Case& c : cases) {
    std::vector<double> qps_reps;
    std::vector<double> p99_reps;
    serve::LoadReport last_report;
    std::uint64_t last_rejected = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      serve::ServerConfig scfg;
      scfg.workers = 2;
      scfg.max_batch = 32;
      scfg.max_delay_ms = 1.0;
      scfg.max_pending = cfg.smoke ? 64 : 512;
      scfg.admission = c.policy;
      serve::BatchServer server(snap, ctx, data.features, scfg);

      failpoint::Spec slow;
      slow.action = failpoint::Action::kDelay;
      slow.delay_ms = 2;  // caps service at ~workers*max_batch/2ms
      failpoint::arm("serve.batch_exec", slow);

      serve::LoadgenOptions opts;
      opts.requests = cfg.smoke ? 512 : 8192;
      opts.clients = 16;
      opts.num_nodes = data.num_nodes();
      const serve::LoadReport report = serve::drive_load(server, opts);
      failpoint::disarm_all();

      const serve::ServerStats stats = server.stats();
      qps_reps.push_back(report.seconds > 0.0
                             ? static_cast<double>(report.ok) / report.seconds
                             : 0.0);
      p99_reps.push_back(stats.p99_latency_ms);
      last_report = report;
      last_rejected = stats.rejected;
    }
    std::sort(qps_reps.begin(), qps_reps.end());
    std::sort(p99_reps.begin(), p99_reps.end());

    Record r{c.bench, "gcn", shape};
    r.batch = 32;
    r.workers = 2;
    r.qps = qps_reps[qps_reps.size() / 2];
    r.p50_ms = 0.0;
    r.p99_ms = p99_reps[p99_reps.size() / 2];
    records.push_back(r);
    std::printf(
        "gcn    %-15s %9.0f good-QPS (p99 %.3f ms, admitted %llu, "
        "rejected %llu of %llu)\n",
        c.bench + 7, r.qps, r.p99_ms,
        static_cast<unsigned long long>(last_report.ok),
        static_cast<unsigned long long>(last_rejected),
        static_cast<unsigned long long>(last_report.requests));
  }
}

// ---- Instrumentation overhead pair. ---------------------------------------
//
// Re-runs the gcn full-forward and server benches with the whole
// observability stack ON (per-stage exec profiling, metrics mirrors, trace
// spans) and records them as "full_forward_obs" / "server_obs" next to
// their instrumentation-off twins. Both sides are committed and gated by
// bench_compare: a regression in the on-path cost shows up in the _obs
// records, and creep in the disabled-hook cost shows up in the originals.
void bench_obs_overhead(const BenchConfig& cfg, const Dataset& data,
                        std::vector<Record>& records) {
  const ModelConfig mcfg = bench_model_config(Arch::kGcn, data);
  const GnnModel model(mcfg);
  Rng rng(47);
  const ParamStore params = model.init_params(rng);
  auto ctx = std::make_shared<const GraphContext>(data.graph, Arch::kGcn);
  const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                            ",nnz=" + std::to_string(data.num_edges());
  // The instrumentation-off twins record under the display arch name.
  const auto baseline_qps = [&](const char* bench) {
    for (const auto& r : records) {
      if (r.bench == bench && r.arch == arch_name(Arch::kGcn)) return r.qps;
    }
    return 0.0;
  };

  obs::set_profiling(true);
  obs::trace::set_enabled(true);

  {
    serve::InferenceEngine engine(mcfg, params, ctx, data.features);
    engine.full_logits();  // warm-up
    Timer t;
    std::int64_t iters = 0;
    while (iters < 3 || t.seconds() < cfg.min_seconds) {
      engine.invalidate();
      engine.full_logits();
      ++iters;
    }
    const double per_pass = t.seconds() / static_cast<double>(iters);
    Record r{"full_forward_obs", "gcn", shape};
    r.batch = data.num_nodes();
    r.qps = static_cast<double>(data.num_nodes()) / per_pass;
    r.p50_ms = r.p99_ms = per_pass * 1e3;
    records.push_back(r);
    const double off = baseline_qps("full_forward");
    std::printf("gcn    full_fwd obs-on %9.0f nodes/s (%.3fx of obs-off)\n",
                r.qps, off > 0.0 ? r.qps / off : 0.0);
  }

  {
    const serve::Snapshot snap =
        serve::make_snapshot(mcfg, params, data, "bench-obs");
    serve::ServerConfig scfg;
    scfg.workers = 2;
    scfg.max_batch = 64;
    scfg.max_delay_ms = 2.0;
    serve::BatchServer server(snap, ctx, data.features, scfg);
    constexpr std::int64_t kClients = 4;
    const double seconds = serve::drive_clients(
        server, cfg.server_requests, kClients, data.num_nodes());
    const serve::ServerStats stats = server.stats();
    Record r{"server_obs", "gcn", shape};
    r.batch = scfg.max_batch;
    r.workers = static_cast<std::int64_t>(scfg.workers);
    r.qps = static_cast<double>(stats.queries) / seconds;
    r.p50_ms = stats.p50_latency_ms;
    r.p99_ms = stats.p99_latency_ms;
    records.push_back(r);
    const double off = baseline_qps("server");
    std::printf("gcn    server obs-on  %9.0f QPS (%.3fx of obs-off)\n",
                r.qps, off > 0.0 ? r.qps / off : 0.0);
  }

  obs::set_profiling(false);
  obs::trace::set_enabled(false);
}

bool write_json(const std::string& path, const std::string& mode,
                const std::vector<Record>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_serving: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  out << "{\n";
  out << "  \"schema\": \"gsoup-bench-serving/v1\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"bench\": \"%s\", \"arch\": \"%s\", \"shape\": \"%s\", "
        "\"batch\": %lld, \"workers\": %lld, \"qps\": %.3f, "
        "\"p50_ms\": %.6f, \"p99_ms\": %.6f, \"batching_speedup\": %.3f, "
        "\"vs_single\": %.3f, \"speedup_vs_fp32\": %.3f, "
        "\"parity_argmax\": %.4f, \"parity_max_delta\": %.3e}",
        r.bench.c_str(), r.arch.c_str(), r.shape.c_str(),
        static_cast<long long>(r.batch), static_cast<long long>(r.workers),
        r.qps, r.p50_ms, r.p99_ms, r.batching_speedup, r.vs_single,
        r.speedup_vs_fp32, r.parity_argmax, r.parity_max_delta);
    out << buf << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.single_probes = 64;
      cfg.batch_rounds = 8;
      // Enough requests that thread spin-up does not dominate the sharded
      // and replicated records — vs_single is gated in CI from the smoke
      // artifact, and at 512 requests the 8-12-thread configurations spend
      // most of the run starting up, deflating the ratio by 2-3x.
      cfg.server_requests = 4096;
      cfg.min_seconds = 0.0;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  // Arxiv-like power-law graph: the regime where batched L-hop expansion
  // pays (hub-heavy neighbourhoods overlap across queries).
  SyntheticSpec spec = arxiv_like_spec(cfg.smoke ? 0.1 : 0.5);
  const Dataset data = generate_dataset(spec);
  std::printf("serving bench on %s\n", dataset_summary(data).c_str());

  std::vector<Record> records;
  for (const Arch arch : {Arch::kGcn, Arch::kSage, Arch::kGat}) {
    bench_arch(cfg, arch, data, records);
  }
  const bool parity_ok = bench_half(cfg, data, records);
  bench_sharded(cfg, data, records);
  bench_replicated(cfg, data, records);
  bench_overload(cfg, data, records);
  bench_obs_overhead(cfg, data, records);
  if (!write_json(cfg.out, cfg.smoke ? "smoke" : "full", records)) return 1;
  std::printf("wrote %s\n", cfg.out.c_str());

  // Parity is deterministic in both modes — enforce it even for smoke
  // (the artifact is written first so a failure leaves the evidence).
  if (!parity_ok) return 1;

  // The batching acceptance bar: 64-way batching must at least double
  // single-query throughput on every architecture. Enforced only for the
  // full-size run — smoke mode's graph is too small (and its timings too
  // short) for the ratio to be stable on noisy CI runners.
  if (!cfg.smoke) {
    for (const auto& r : records) {
      if (r.bench == "engine_query" && r.batch == 64 &&
          r.batching_speedup < 2.0) {
        std::fprintf(stderr,
                     "bench_serving: %s batching speedup %.2fx < 2x\n",
                     r.arch.c_str(), r.batching_speedup);
        return 1;
      }
    }
  }
  return 0;
}
