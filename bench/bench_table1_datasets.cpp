// Table I — dataset details: nodes, edges, classes, train/val/test split.
// Prints the generated synthetic presets side by side with the paper's
// original statistics so the scaling substitution is transparent.
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();

  Table table("Table I: Dataset Details (synthetic presets; paper "
              "originals in parentheses)");
  table.set_header({"Dataset", "Nodes", "Edges", "Classes",
                    "train/val/test split"});

  const char* paper_stats[4][4] = {
      {"(89.3K)", "(0.9M)", "(7)", "0.5/0.25/0.25"},
      {"(169.3K)", "(1.2M)", "(40)", "0.54/0.18/0.28"},
      {"(233K)", "(11.6M)", "(41)", "0.66/0.1/0.24"},
      {"(2.4M)", "(61.9M)", "(47)", "0.1/0.02/0.88"},
  };

  for (int preset = 0; preset < 4; ++preset) {
    const Dataset data = bench::make_dataset(preset, scale);
    const double n = static_cast<double>(data.num_nodes());
    table.add_row(
        {data.name,
         std::to_string(data.num_nodes()) + " " + paper_stats[preset][0],
         std::to_string(data.num_edges()) + " " + paper_stats[preset][1],
         std::to_string(data.num_classes) + " " + paper_stats[preset][2],
         Table::fmt(static_cast<double>(data.split_size(Split::kTrain)) / n,
                    2) +
             "/" +
             Table::fmt(static_cast<double>(data.split_size(Split::kVal)) / n,
                        2) +
             "/" +
             Table::fmt(
                 static_cast<double>(data.split_size(Split::kTest)) / n, 2) +
             " (" + paper_stats[preset][3] + ")"});
  }
  table.print();
  std::printf("\nScale factor GSOUP_SCALE=%.2f — presets preserve the "
              "paper's class counts, split ratios and relative density.\n",
              scale.dataset_scale);
  return 0;
}
