// §V-C ablation — "The relative impact that LS has on memory usage
// correlates quite well with the number of layers in the model": sweep
// model depth on the arxiv-like GCN cell and report LS's souping memory
// against GIS's at each depth (LS retains one activation set per layer
// for the backward pass; GIS's forward-only evaluation does not).
#include <cstdio>

#include "core/gis.hpp"
#include "core/learned.hpp"
#include "harness/experiment.hpp"
#include "train/ingredient_farm.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  auto scale = bench::Scale::from_env();
  const Dataset data = bench::make_dataset(1, scale);  // arxiv-like
  const GraphContext ctx(data.graph, Arch::kGcn);

  Table table("Ablation (paper §V-C): LS memory footprint vs model depth "
              "(GCN on arxiv-like)");
  table.set_header({"layers", "GIS mix peak", "LS mix peak", "LS/GIS",
                    "GIS test %", "LS test %"});

  for (const std::int64_t layers : {2LL, 3LL, 4LL}) {
    ModelConfig cfg = bench::cell_model_config(Arch::kGcn, data);
    cfg.num_layers = layers;
    const GnnModel model(cfg);

    FarmConfig farm;
    farm.num_ingredients = 4;
    farm.num_workers = 2;
    farm.train.epochs = 30;
    farm.train.optimizer.kind = OptimizerKind::kAdam;
    farm.train.schedule.base_lr = 0.01;
    farm.train.keep_best = true;
    const FarmResult ings = train_ingredients(model, ctx, data, farm);
    const SoupContext sctx{model, ctx, data, ings.ingredients};

    GisSouper gis({.granularity = 20});
    const SoupReport gis_report = run_souper(gis, sctx);
    LearnedSoupConfig ls_cfg;
    ls_cfg.epochs = 40;
    LearnedSouper ls(ls_cfg);
    const SoupReport ls_report = run_souper(ls, sctx);

    table.add_row(
        {std::to_string(layers),
         Table::fmt_bytes(gis_report.mix_peak_bytes),
         Table::fmt_bytes(ls_report.mix_peak_bytes),
         Table::fmt(static_cast<double>(ls_report.mix_peak_bytes) /
                        static_cast<double>(gis_report.mix_peak_bytes),
                    2),
         Table::fmt(gis_report.test_acc * 100),
         Table::fmt(ls_report.test_acc * 100)});
  }
  table.print();
  std::printf("\nLS's memory premium grows with depth: every extra layer "
              "adds a retained activation set to the souping tape.\n");
  return 0;
}
