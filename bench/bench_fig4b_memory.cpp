// Fig. 4b — relative peak memory usage of the souping phase, normalised to
// GIS (lower is better). Following the paper, US is excluded ("a
// completely performance-blind souping algorithm ... does not require any
// forward passes"). Footprint = resident ingredients + peak tensor bytes
// allocated while mixing. Paper shape: LS is the most memory-hungry
// configuration everywhere (it retains full-graph activations for the
// backward pass); PLS cuts the footprint by roughly the partition ratio.
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();
  const auto cells = bench::run_matrix(scale);

  Table table(
      "Fig. 4b: Relative souping memory vs GIS [lower is better]");
  table.set_header({"Model", "Dataset", "GIS", "LS", "PLS",
                    "GIS abs", "LS abs", "PLS abs"});
  for (const auto& cell : cells) {
    const double gis = cell.summarize("GIS").peak_bytes_mean;
    const double ls = cell.summarize("LS").peak_bytes_mean;
    const double pls = cell.summarize("PLS").peak_bytes_mean;
    table.add_row(
        {cell.arch, cell.dataset, "1.00", Table::fmt(ls / gis, 2),
         Table::fmt(pls / gis, 2),
         Table::fmt_bytes(static_cast<std::size_t>(gis)),
         Table::fmt_bytes(static_cast<std::size_t>(ls)),
         Table::fmt_bytes(static_cast<std::size_t>(pls))});
  }
  table.print();

  // The paper's headline PLS claim is the reduction vs LS (≈ R/K of the
  // activation footprint).
  Table reduction("PLS memory reduction vs LS (mixing-phase tensors only)");
  reduction.set_header({"Model", "Dataset", "LS mix peak", "PLS mix peak",
                        "reduction"});
  for (const auto& cell : cells) {
    const double ls = cell.summarize("LS").mix_peak_bytes_mean;
    const double pls = cell.summarize("PLS").mix_peak_bytes_mean;
    reduction.add_row(
        {cell.arch, cell.dataset,
         Table::fmt_bytes(static_cast<std::size_t>(ls)),
         Table::fmt_bytes(static_cast<std::size_t>(pls)),
         Table::fmt((1.0 - pls / ls) * 100.0, 1) + "%"});
  }
  reduction.print();
  std::printf("\nPLS partition ratio R/K = %lld/%lld = %.2f — the paper "
              "reports memory reduction approaching this ratio as model "
              "size shrinks (§VI-B).\n",
              static_cast<long long>(scale.pls_budget),
              static_cast<long long>(scale.pls_parts),
              static_cast<double>(scale.pls_budget) /
                  static_cast<double>(scale.pls_parts));
  return 0;
}
