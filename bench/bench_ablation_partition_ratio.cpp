// §VI-B ablation — the PLS partition ratio R/K. Sweeps R at fixed K=32 on
// the Flickr-like GCN cell (the configuration the paper discusses:
// "in the GCN model on the Flickr dataset, the graph was partitioned into
// 32 parts ... 8 randomly selected partitions"). Reports accuracy, time,
// mixing memory and the subgraph diversity C(K,R) — including the R=1
// degradation the paper quantifies at 2-3%.
#include <cmath>
#include <cstdio>

#include "core/pls.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

namespace {

double log10_binomial(std::int64_t n, std::int64_t k) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < k; ++i) {
    acc += std::log10(static_cast<double>(n - i)) -
           std::log10(static_cast<double>(i + 1));
  }
  return acc;
}

}  // namespace

int main() {
  using namespace gsoup;
  auto scale = bench::Scale::from_env();
  const int preset = 0;  // flickr-like
  const Arch arch = Arch::kGcn;

  const Dataset data = bench::make_dataset(preset, scale);
  const GnnModel model(bench::cell_model_config(arch, data));
  const GraphContext ctx(data.graph, arch);
  const auto ingredients = bench::get_ingredients(model, ctx, data, scale);
  const SoupContext sctx{model, ctx, data, ingredients};

  const std::int64_t k_parts = 32;
  Table table("Ablation (paper §VI-B): PLS partition ratio R/K at K=32, "
              "GCN on flickr-like");
  table.set_header({"R", "R/K", "log10 C(K,R)", "test acc %", "val acc %",
                    "time (s)", "mix peak"});

  double r1_acc = 0.0, best_acc = 0.0;
  for (const std::int64_t r : {1LL, 2LL, 4LL, 8LL, 16LL, 32LL}) {
    PlsConfig cfg;
    cfg.base.epochs = scale.pls_epochs;
    cfg.base.lr = 0.2;
    cfg.base.seed = 5;
    cfg.num_parts = k_parts;
    cfg.budget = r;
    PartitionLearnedSouper souper(data, cfg);
    const SoupReport report = run_souper(souper, sctx);
    if (r == 1) r1_acc = report.test_acc;
    best_acc = std::max(best_acc, report.test_acc);
    table.add_row({std::to_string(r),
                   Table::fmt(static_cast<double>(r) / k_parts, 3),
                   Table::fmt(log10_binomial(k_parts, r), 1),
                   Table::fmt(report.test_acc * 100),
                   Table::fmt(report.val_acc * 100),
                   Table::fmt(report.seconds, 3),
                   Table::fmt_bytes(report.mix_peak_bytes)});
  }
  table.print();
  std::printf("\nR=1 penalty vs best R: %.2f%% (paper: limited subgraph "
              "choice at R=1 'can degrade performance by up to 2-3%%'; "
              "cut edges are never exercised at R=1).\n",
              (best_acc - r1_acc) * 100.0);
  return 0;
}
