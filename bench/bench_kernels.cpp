// Kernel microbenchmarks with a machine-readable artifact.
//
// Times the compute primitives every souping strategy is built from —
// blocked GEMM vs the naive reference, edge-balanced SpMM vs the naive
// row-parallel loop on a power-law graph, GAT attention, transpose,
// elementwise maps and reductions — and writes BENCH_kernels.json
// (schema gsoup-bench-kernels/v1, see README.md). The committed JSON is
// the perf baseline later PRs are compared against.
//
// Usage: bench_kernels [--smoke] [--out PATH]
//   --smoke   tiny shapes + minimal iterations (CI regression gate)
//   --out     artifact path (default BENCH_kernels.json in the CWD)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ag/graph_ops.hpp"
#include "ag/value.hpp"
#include "graph/generator.hpp"
#include "graph/locality.hpp"
#include "graph/normalize.hpp"
#include "harness/kernel_report.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace gsoup;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::empty(std::move(shape));
  init::normal(t, rng, 0.0f, 1.0f);
  return t;
}

std::string dense_shape(std::int64_t m, std::int64_t k, std::int64_t n) {
  return "m=" + std::to_string(m) + ",k=" + std::to_string(k) +
         ",n=" + std::to_string(n);
}

struct BenchConfig {
  bool smoke = false;
  std::string out = "BENCH_kernels.json";
  std::int64_t min_iters = 3;
  double min_seconds = 0.25;
};

void bench_gemm(const BenchConfig& cfg, bench::KernelReport& report) {
  const std::vector<std::int64_t> sizes =
      cfg.smoke ? std::vector<std::int64_t>{32, 64}
                : std::vector<std::int64_t>{128, 256, 512};
  for (const auto n : sizes) {
    const Tensor a = random_tensor({n, n}, 1);
    const Tensor b = random_tensor({n, n}, 2);
    Tensor c = Tensor::zeros({n, n});
    const double flops = 2.0 * n * n * n;
    const double bytes = 3.0 * n * n * sizeof(float);

    bench::KernelResult naive{"matmul", "naive", dense_shape(n, n, n)};
    naive.flops = flops;
    naive.bytes = bytes;
    bench::time_kernel(
        naive,
        [&] {
          c.zero_();
          ops::matmul_naive_acc(a, b, c);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(naive);

    bench::KernelResult blocked{"matmul", "blocked", dense_shape(n, n, n)};
    blocked.flops = flops;
    blocked.bytes = bytes;
    bench::time_kernel(
        blocked,
        [&] {
          c.zero_();
          ops::matmul_acc(a, b, c);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(blocked);
  }

  // Transposed variants (the backward-pass GEMMs) at one mid size.
  const std::int64_t n = cfg.smoke ? 48 : 256;
  const Tensor a = random_tensor({n, n}, 3);
  const Tensor b = random_tensor({n, n}, 4);
  const double flops = 2.0 * n * n * n;
  const double bytes = 3.0 * n * n * sizeof(float);
  for (const bool naive : {true, false}) {
    bench::KernelResult tn{"matmul_tn", naive ? "naive" : "blocked",
                           dense_shape(n, n, n)};
    tn.flops = flops;
    tn.bytes = bytes;
    bench::time_kernel(
        tn,
        [&] {
          if (naive) {
            ops::matmul_tn_naive(a, b);
          } else {
            ops::matmul_tn(a, b);
          }
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(tn);

    bench::KernelResult nt{"matmul_nt", naive ? "naive" : "blocked",
                           dense_shape(n, n, n)};
    nt.flops = flops;
    nt.bytes = bytes;
    bench::time_kernel(
        nt,
        [&] {
          if (naive) {
            ops::matmul_nt_naive(a, b);
          } else {
            ops::matmul_nt(a, b);
          }
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(nt);
  }
}

void bench_spmm(const BenchConfig& cfg, bench::KernelReport& report) {
  // Power-law-degree graph: high lognormal sigma gives the skewed indptr
  // the edge-balanced schedule exists for.
  SyntheticSpec spec;
  spec.num_nodes = cfg.smoke ? 500 : 20000;
  spec.avg_degree = cfg.smoke ? 8 : 20;
  spec.degree_sigma = 2.0;
  spec.num_classes = 8;
  spec.feature_dim = 8;
  spec.seed = 3;
  const Dataset data = generate_dataset(spec);
  const Csr norm = gcn_normalize(data.graph);
  const std::int64_t e = norm.num_edges();

  // The graph locality layer's operands, built once per graph exactly as
  // GraphContext does for a GraphPlan context: "cached" is the BlockedCsr
  // layout of the adjacency as-is (pre-computed row blocks + narrow
  // indices), "reordered" additionally RCM-permutes the vertex numbering.
  // Layout/permutation build time is excluded — it is amortised over every
  // epoch and query of a training or serving run.
  const graph::BlockedCsr cached_layout = graph::build_blocked_csr(norm);
  const graph::GraphPlan plan(data.graph, graph::Reorder::kRcm);
  const graph::BlockedCsr reordered_layout =
      graph::build_blocked_csr(plan.apply(norm));

  const std::vector<std::int64_t> dims =
      cfg.smoke ? std::vector<std::int64_t>{16}
                : std::vector<std::int64_t>{16, 32, 64, 128};
  for (const auto d : dims) {
    const Tensor x = random_tensor({data.num_nodes(), d}, 5);
    Tensor y = Tensor::zeros({data.num_nodes(), d});
    const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                              ",nnz=" + std::to_string(e) +
                              ",d=" + std::to_string(d);
    const double flops = 2.0 * e * d;
    const double bytes =
        e * (sizeof(std::int32_t) + sizeof(float))  // indices + values
        + static_cast<double>(e) * d * sizeof(float)  // gathered X rows
        + 2.0 * data.num_nodes() * d * sizeof(float);  // Y read+write

    bench::KernelResult naive{"spmm", "naive", shape};
    naive.flops = flops;
    naive.bytes = bytes;
    bench::time_kernel(
        naive,
        [&] {
          y.zero_();
          ag::spmm_reference(norm, x, y);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(naive);

    // The production path: edge-balanced schedule + width-specialised
    // dual-accumulator kernel, fused with output init (so no zero_() —
    // same end-to-end Y = A·X as the naive zero+accumulate above).
    bench::KernelResult fused{"spmm", "fused", shape};
    fused.flops = flops;
    fused.bytes = bytes;
    bench::time_kernel(
        fused, [&] { ag::spmm_overwrite(norm, x, y); }, cfg.min_iters,
        cfg.min_seconds);
    report.add(fused);

    // Same fused kernels over the cached layout (no per-launch chunking
    // pass, 16-bit gather indices on this sub-2^16-node graph).
    bench::KernelResult cached{"spmm", "cached", shape};
    cached.flops = flops;
    cached.bytes = bytes;
    bench::time_kernel(
        cached, [&] { ag::spmm_blocked_overwrite(cached_layout, x, y); },
        cfg.min_iters, cfg.min_seconds);
    report.add(cached);

    // Cached layout over the RCM-reordered numbering; X is permuted once
    // outside the timed region, the way a GraphPlan pipeline holds all
    // per-node data in plan space.
    const Tensor px = plan.permute_rows(x);
    bench::KernelResult reordered{"spmm", "reordered", shape};
    reordered.flops = flops;
    reordered.bytes = bytes;
    bench::time_kernel(
        reordered,
        [&] { ag::spmm_blocked_overwrite(reordered_layout, px, y); },
        cfg.min_iters, cfg.min_seconds);
    report.add(reordered);
  }

  // GAT attention forward on the same skewed graph (no naive twin; tracked
  // for trajectory only).
  const std::int64_t heads = 4, hd = 16;
  const CsrTranspose gt = data.graph.transpose();
  auto h = ag::constant(random_tensor({data.num_nodes(), heads * hd}, 6));
  auto sd = ag::constant(random_tensor({data.num_nodes(), heads}, 7));
  auto ss = ag::constant(random_tensor({data.num_nodes(), heads}, 8));
  ag::NoGradGuard guard;
  bench::KernelResult gat{"gat_attention", "balanced",
                          "n=" + std::to_string(data.num_nodes()) +
                              ",nnz=" + std::to_string(data.num_edges()) +
                              ",heads=4,d=16"};
  gat.flops = 2.0 * data.num_edges() * heads * hd;
  gat.bytes = static_cast<double>(data.num_edges()) * heads * hd *
              sizeof(float);
  bench::time_kernel(
      gat, [&] { ag::gat_attention(data.graph, gt, h, sd, ss, heads, 0.2f); },
      cfg.min_iters, cfg.min_seconds);
  report.add(gat);
}

void bench_elementwise(const BenchConfig& cfg, bench::KernelReport& report) {
  const std::int64_t numel = cfg.smoke ? (1 << 14) : (1 << 22);
  const Tensor a = random_tensor({numel}, 9);
  const Tensor b = random_tensor({numel}, 10);
  const std::string shape = "numel=" + std::to_string(numel);

  bench::KernelResult relu{"relu", "parallel", shape};
  relu.bytes = 2.0 * numel * sizeof(float);
  bench::time_kernel(relu, [&] { ops::relu(a); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(relu);

  bench::KernelResult mul{"mul", "parallel", shape};
  mul.flops = static_cast<double>(numel);
  mul.bytes = 3.0 * numel * sizeof(float);
  bench::time_kernel(mul, [&] { ops::mul(a, b); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(mul);

  bench::KernelResult sum{"sum", "compensated", shape};
  sum.flops = static_cast<double>(numel);
  sum.bytes = static_cast<double>(numel) * sizeof(float);
  float sink = 0.0f;
  bench::time_kernel(sum, [&] { sink += ops::sum(a); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(sum);

  bench::KernelResult dot{"dot", "compensated", shape};
  dot.flops = 2.0 * numel;
  dot.bytes = 2.0 * numel * sizeof(float);
  bench::time_kernel(dot, [&] { sink += ops::dot(a, b); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(dot);
  if (sink == 12345.6789f) std::printf("-");  // keep the sums live

  const std::int64_t t = cfg.smoke ? 128 : 2048;
  const Tensor m = random_tensor({t, t}, 11);
  bench::KernelResult tr{"transpose", "tiled",
                         "m=" + std::to_string(t) + ",n=" + std::to_string(t)};
  tr.bytes = 2.0 * t * t * sizeof(float);
  bench::time_kernel(tr, [&] { ops::transpose(m); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(tr);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.min_iters = 2;
      cfg.min_seconds = 0.0;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::KernelReport report(cfg.smoke ? "smoke" : "full");
  bench_gemm(cfg, report);
  bench_spmm(cfg, report);
  bench_elementwise(cfg, report);
  report.compute_speedups();
  report.print_table();
  if (!report.write_json(cfg.out)) return 1;
  std::printf("wrote %s\n", cfg.out.c_str());
  return 0;
}
