// Kernel microbenchmarks with a machine-readable artifact.
//
// Times the compute primitives every souping strategy is built from —
// blocked GEMM vs the naive reference, edge-balanced SpMM vs the naive
// row-parallel loop on a power-law graph, GAT attention, transpose,
// elementwise maps and reductions — and writes BENCH_kernels.json
// (schema gsoup-bench-kernels/v1, see README.md). The committed JSON is
// the perf baseline later PRs are compared against.
//
// Usage: bench_kernels [--smoke] [--out PATH]
//   --smoke   tiny shapes + minimal iterations (CI regression gate)
//   --out     artifact path (default BENCH_kernels.json in the CWD)
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "ag/graph_ops.hpp"
#include "ag/value.hpp"
#include "exec/executor.hpp"
#include "graph/generator.hpp"
#include "graph/locality.hpp"
#include "graph/normalize.hpp"
#include "graph/sampling.hpp"
#include "harness/kernel_report.hpp"
#include "nn/model.hpp"
#include "tensor/half.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace gsoup;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::empty(std::move(shape));
  init::normal(t, rng, 0.0f, 1.0f);
  return t;
}

std::string dense_shape(std::int64_t m, std::int64_t k, std::int64_t n) {
  return "m=" + std::to_string(m) + ",k=" + std::to_string(k) +
         ",n=" + std::to_string(n);
}

struct BenchConfig {
  bool smoke = false;
  std::string out = "BENCH_kernels.json";
  std::int64_t min_iters = 3;
  double min_seconds = 0.25;
};

void bench_gemm(const BenchConfig& cfg, bench::KernelReport& report) {
  const std::vector<std::int64_t> sizes =
      cfg.smoke ? std::vector<std::int64_t>{32, 64}
                : std::vector<std::int64_t>{128, 256, 512};
  for (const auto n : sizes) {
    const Tensor a = random_tensor({n, n}, 1);
    const Tensor b = random_tensor({n, n}, 2);
    Tensor c = Tensor::zeros({n, n});
    const double flops = 2.0 * n * n * n;
    const double bytes = 3.0 * n * n * sizeof(float);

    bench::KernelResult naive{"matmul", "naive", dense_shape(n, n, n)};
    naive.flops = flops;
    naive.bytes = bytes;
    bench::time_kernel(
        naive,
        [&] {
          c.zero_();
          ops::matmul_naive_acc(a, b, c);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(naive);

    bench::KernelResult blocked{"matmul", "blocked", dense_shape(n, n, n)};
    blocked.flops = flops;
    blocked.bytes = bytes;
    bench::time_kernel(
        blocked,
        [&] {
          c.zero_();
          ops::matmul_acc(a, b, c);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(blocked);

    // Both operands stored fp16 (the serving half-lowering's layer GEMM:
    // half activations x half weight panels), widened in the pack step,
    // fp32 accumulate. Same blocked schedule, half the operand traffic.
    const HalfBuffer ha = HalfBuffer::quantize(a, Precision::kFp16);
    const HalfBuffer hb = HalfBuffer::quantize(b, Precision::kFp16);
    bench::KernelResult half{"matmul", "blocked_fp16", dense_shape(n, n, n)};
    half.flops = flops;
    half.bytes = 2.0 * n * n * sizeof(std::uint16_t) + n * n * sizeof(float);
    bench::time_kernel(
        half,
        [&] {
          c.zero_();
          ops::matmul_acc(ha, hb, c);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(half);
  }

  // Transposed variants (the backward-pass GEMMs) at one mid size.
  const std::int64_t n = cfg.smoke ? 48 : 256;
  const Tensor a = random_tensor({n, n}, 3);
  const Tensor b = random_tensor({n, n}, 4);
  const double flops = 2.0 * n * n * n;
  const double bytes = 3.0 * n * n * sizeof(float);
  for (const bool naive : {true, false}) {
    bench::KernelResult tn{"matmul_tn", naive ? "naive" : "blocked",
                           dense_shape(n, n, n)};
    tn.flops = flops;
    tn.bytes = bytes;
    bench::time_kernel(
        tn,
        [&] {
          if (naive) {
            ops::matmul_tn_naive(a, b);
          } else {
            ops::matmul_tn(a, b);
          }
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(tn);

    bench::KernelResult nt{"matmul_nt", naive ? "naive" : "blocked",
                           dense_shape(n, n, n)};
    nt.flops = flops;
    nt.bytes = bytes;
    bench::time_kernel(
        nt,
        [&] {
          if (naive) {
            ops::matmul_nt_naive(a, b);
          } else {
            ops::matmul_nt(a, b);
          }
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(nt);
  }
}

/// Power-law-degree graph: high lognormal sigma gives the skewed indptr
/// the edge-balanced schedule exists for. Shared by the SpMM, GAT and
/// block-SpMM benches so every sparse record refers to the same graph.
Dataset power_law_dataset(bool smoke) {
  SyntheticSpec spec;
  spec.num_nodes = smoke ? 500 : 20000;
  spec.avg_degree = smoke ? 8 : 20;
  spec.degree_sigma = 2.0;
  spec.num_classes = 8;
  spec.feature_dim = 8;
  spec.seed = 3;
  return generate_dataset(spec);
}

void bench_spmm(const BenchConfig& cfg, bench::KernelReport& report) {
  const Dataset data = power_law_dataset(cfg.smoke);
  const Csr norm = gcn_normalize(data.graph);
  const std::int64_t e = norm.num_edges();

  // The graph locality layer's operands, built once per graph exactly as
  // GraphContext does for a GraphPlan context: "cached" is the BlockedCsr
  // layout of the adjacency as-is (pre-computed row blocks + narrow
  // indices), "reordered" additionally RCM-permutes the vertex numbering.
  // Layout/permutation build time is excluded — it is amortised over every
  // epoch and query of a training or serving run.
  const graph::BlockedCsr cached_layout = graph::build_blocked_csr(norm);
  const graph::GraphPlan plan(data.graph, graph::Reorder::kRcm);
  const graph::BlockedCsr reordered_layout =
      graph::build_blocked_csr(plan.apply(norm));

  const std::vector<std::int64_t> dims =
      cfg.smoke ? std::vector<std::int64_t>{16}
                : std::vector<std::int64_t>{16, 32, 64, 128};
  for (const auto d : dims) {
    const Tensor x = random_tensor({data.num_nodes(), d}, 5);
    Tensor y = Tensor::zeros({data.num_nodes(), d});
    const std::string shape = "n=" + std::to_string(data.num_nodes()) +
                              ",nnz=" + std::to_string(e) +
                              ",d=" + std::to_string(d);
    const double flops = 2.0 * e * d;
    const double bytes =
        e * (sizeof(std::int32_t) + sizeof(float))  // indices + values
        + static_cast<double>(e) * d * sizeof(float)  // gathered X rows
        + 2.0 * data.num_nodes() * d * sizeof(float);  // Y read+write

    bench::KernelResult naive{"spmm", "naive", shape};
    naive.flops = flops;
    naive.bytes = bytes;
    bench::time_kernel(
        naive,
        [&] {
          y.zero_();
          ag::spmm_reference(norm, x, y);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(naive);

    // The production path: edge-balanced schedule + width-specialised
    // dual-accumulator kernel, fused with output init (so no zero_() —
    // same end-to-end Y = A·X as the naive zero+accumulate above).
    bench::KernelResult fused{"spmm", "fused", shape};
    fused.flops = flops;
    fused.bytes = bytes;
    bench::time_kernel(
        fused, [&] { ag::spmm_overwrite(norm, x, y); }, cfg.min_iters,
        cfg.min_seconds);
    report.add(fused);

    // Same fused kernels over the cached layout (no per-launch chunking
    // pass, 16-bit gather indices on this sub-2^16-node graph).
    bench::KernelResult cached{"spmm", "cached", shape};
    cached.flops = flops;
    cached.bytes = bytes;
    bench::time_kernel(
        cached, [&] { ag::spmm_blocked_overwrite(cached_layout, x, y); },
        cfg.min_iters, cfg.min_seconds);
    report.add(cached);

    // Cached layout over a half-stored X (the serving half-lowering's
    // aggregation: rows widened to fp32 in registers inside the gather,
    // accumulation order unchanged) — half the X gather traffic, which is
    // most of this kernel's byte budget on a skewed graph.
    const HalfBuffer hx = HalfBuffer::quantize(x, Precision::kFp16);
    bench::KernelResult cached_half{"spmm", "cached_fp16", shape};
    cached_half.flops = flops;
    cached_half.bytes = e * (sizeof(std::int32_t) + sizeof(float)) +
                        static_cast<double>(e) * d * sizeof(std::uint16_t) +
                        2.0 * data.num_nodes() * d * sizeof(float);
    bench::time_kernel(
        cached_half,
        [&] { ag::spmm_blocked_overwrite(cached_layout, hx, y); },
        cfg.min_iters, cfg.min_seconds);
    report.add(cached_half);

    // Cached layout over the RCM-reordered numbering; X is permuted once
    // outside the timed region, the way a GraphPlan pipeline holds all
    // per-node data in plan space.
    const Tensor px = plan.permute_rows(x);
    bench::KernelResult reordered{"spmm", "reordered", shape};
    reordered.flops = flops;
    reordered.bytes = bytes;
    bench::time_kernel(
        reordered,
        [&] { ag::spmm_blocked_overwrite(reordered_layout, px, y); },
        cfg.min_iters, cfg.min_seconds);
    report.add(reordered);
  }

}

void bench_gat(const BenchConfig& cfg, bench::KernelReport& report) {
  // GAT attention forward and backward on the skewed graph: "naive" is
  // the seed kernel (per-(dst,head) serial walks, fresh dz per backward
  // call), "fused" the head-fused width-specialised kernels over raw
  // int32 spans, "plan" the same kernels over the cached BlockedCsr
  // structure/transpose layouts (16-bit indices, pre-computed blocks,
  // 32-bit edge positions) — speedup_vs_naive is the speedup over the
  // seed, speedup_vs_fused isolates the locality layer's contribution.
  const Dataset data = power_law_dataset(cfg.smoke);
  const Csr& g = data.graph;
  const std::int64_t n = data.num_nodes();
  const std::int64_t e = data.num_edges();
  const CsrTranspose gt = g.transpose();
  const graph::BlockedCsr layout = graph::build_blocked_csr(g);
  const graph::BlockedCsr layout_t = graph::build_blocked_transpose(g);
  const float slope = 0.2f;
  const std::int64_t d = 16;

  const std::vector<std::int64_t> head_counts =
      cfg.smoke ? std::vector<std::int64_t>{4}
                : std::vector<std::int64_t>{1, 4, 8};
  for (const auto heads : head_counts) {
    const Tensor h = random_tensor({n, heads * d}, 6);
    const Tensor sd = random_tensor({n, heads}, 7);
    const Tensor ss = random_tensor({n, heads}, 8);
    Tensor alpha = Tensor::empty({e, heads});
    Tensor out = Tensor::empty({n, heads * d});
    const std::string shape = "n=" + std::to_string(n) +
                              ",nnz=" + std::to_string(e) +
                              ",heads=" + std::to_string(heads) + ",d=16";
    const double fwd_flops = 2.0 * e * heads * d;
    const double fwd_bytes = static_cast<double>(e) * heads * d *
                             sizeof(float);

    bench::KernelResult fwd_naive{"gat_attention", "naive", shape};
    fwd_naive.flops = fwd_flops;
    fwd_naive.bytes = fwd_bytes;
    bench::time_kernel(
        fwd_naive,
        [&] {
          ag::gat_attention_forward_reference(g.indptr, g.indices, h, sd, ss,
                                              heads, slope, alpha, out);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(fwd_naive);

    bench::KernelResult fwd_fused{"gat_attention", "fused", shape};
    fwd_fused.flops = fwd_flops;
    fwd_fused.bytes = fwd_bytes;
    bench::time_kernel(
        fwd_fused,
        [&] {
          ag::gat_attention_forward(g.indptr, g.indices, h, sd, ss, heads,
                                    slope, alpha, out);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(fwd_fused);

    bench::KernelResult fwd_plan{"gat_attention", "plan", shape};
    fwd_plan.flops = fwd_flops;
    fwd_plan.bytes = fwd_bytes;
    bench::time_kernel(
        fwd_plan,
        [&] {
          ag::gat_attention_forward(layout, h, sd, ss, heads, slope, alpha,
                                    out);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(fwd_plan);

    // Inference-only forward (exec-layer infer lowering): no alpha store,
    // no normalisation walk — the serving engine never reads the
    // attention coefficients. Bit-identical output to fused/plan.
    bench::KernelResult fwd_infer{"gat_attention", "infer", shape};
    fwd_infer.flops = fwd_flops;
    fwd_infer.bytes = fwd_bytes;
    bench::time_kernel(
        fwd_infer,
        [&] { ag::gat_attention_infer(layout, h, sd, ss, heads, slope, out); },
        cfg.min_iters, cfg.min_seconds);
    report.add(fwd_infer);

    // Backward: alpha holds the forward's coefficients; gradients
    // accumulate into preallocated tensors (growth across iterations does
    // not change the instruction stream).
    const Tensor grad = random_tensor({n, heads * d}, 9);
    Tensor dh = Tensor::zeros({n, heads * d});
    Tensor dsl = Tensor::zeros({n, heads});
    Tensor dsr = Tensor::zeros({n, heads});
    const double bwd_flops = 4.0 * e * heads * d;
    const double bwd_bytes = 2.0 * e * heads * d * sizeof(float);

    bench::KernelResult bwd_naive{"gat_attention_bwd", "naive", shape};
    bwd_naive.flops = bwd_flops;
    bwd_naive.bytes = bwd_bytes;
    bench::time_kernel(
        bwd_naive,
        [&] {
          ag::gat_attention_backward_reference(g.indptr, g.indices, gt, h,
                                               sd, ss, alpha, grad, heads,
                                               slope, &dh, &dsl, &dsr);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(bwd_naive);

    bench::KernelResult bwd_fused{"gat_attention_bwd", "fused", shape};
    bwd_fused.flops = bwd_flops;
    bwd_fused.bytes = bwd_bytes;
    bench::time_kernel(
        bwd_fused,
        [&] {
          ag::gat_attention_backward(g.indptr, g.indices, gt, h, sd, ss,
                                     alpha, grad, heads, slope, &dh, &dsl,
                                     &dsr);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(bwd_fused);

    bench::KernelResult bwd_plan{"gat_attention_bwd", "plan", shape};
    bwd_plan.flops = bwd_flops;
    bwd_plan.bytes = bwd_bytes;
    bench::time_kernel(
        bwd_plan,
        [&] {
          ag::gat_attention_backward(layout, layout_t, h, sd, ss, alpha,
                                     grad, heads, slope, &dh, &dsl, &dsr);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(bwd_plan);
  }
}

void bench_block_spmm_bwd(const BenchConfig& cfg,
                          bench::KernelReport& report) {
  // block_spmm backward dX = Bᵀ·dY: "naive" is the seed scatter (every
  // thread walks all E edges, team clamped to ~d), "transpose" the
  // edge-balanced SpMM gather over the block's cached BlockedCsr
  // transpose. Two block shapes from the power-law graph:
  //   - the full-neighbourhood block over every node (the PLS
  //     union-subgraph shape), gated against its scatter twin;
  //   - a sampled 4096-seed minibatch block, recorded without a naive
  //     twin (trajectory only — its smaller gradient matrix fits cache
  //     for both kernels, so the ratio is noise-fragile on CI runners).
  // The counting-sort build the forward pays once per block is recorded
  // separately (block_transpose_build, no naive twin) so the
  // amortisation story stays inspectable.
  const Dataset data = power_law_dataset(cfg.smoke);
  Rng rng(17);
  const std::vector<std::int64_t> fanouts{-1};

  std::vector<std::int64_t> all_nodes(
      static_cast<std::size_t>(data.num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  const auto full_blocks = sample_blocks(data.graph, all_nodes, fanouts, rng);
  const Block& full = full_blocks.front();
  const graph::BlockedCsr full_t = graph::build_blocked_transpose_spans(
      full.indptr, full.indices, full.values, full.num_src());

  const std::vector<std::int64_t> dims =
      cfg.smoke ? std::vector<std::int64_t>{16}
                : std::vector<std::int64_t>{16, 64};
  for (const auto d : dims) {
    const Tensor grad = random_tensor({full.num_dst, d}, 21);
    Tensor xg = Tensor::zeros({full.num_src(), d});
    const std::string shape = "dst=" + std::to_string(full.num_dst) +
                              ",src=" + std::to_string(full.num_src()) +
                              ",nnz=" + std::to_string(full.num_edges()) +
                              ",d=" + std::to_string(d);
    const double flops = 2.0 * full.num_edges() * d;
    const double bytes =
        full.num_edges() *
            (sizeof(std::int32_t) + sizeof(float) +
             static_cast<double>(d) * sizeof(float)) +
        2.0 * full.num_src() * d * sizeof(float);

    bench::KernelResult naive{"block_spmm_bwd", "naive", shape};
    naive.flops = flops;
    naive.bytes = bytes;
    bench::time_kernel(
        naive, [&] { ag::block_spmm_backward_scatter(full, grad, xg); },
        cfg.min_iters, cfg.min_seconds);
    report.add(naive);

    bench::KernelResult gather{"block_spmm_bwd", "transpose", shape};
    gather.flops = flops;
    gather.bytes = bytes;
    bench::time_kernel(
        gather, [&] { ag::spmm_blocked_accumulate(full_t, grad, xg); },
        cfg.min_iters, cfg.min_seconds);
    report.add(gather);
  }

  // Sampled minibatch block, transpose path only (see above).
  std::vector<std::int64_t> seeds(cfg.smoke ? 128 : 4096);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(data.num_nodes())));
  }
  const auto blocks = sample_blocks(data.graph, seeds, fanouts, rng);
  const Block& block = blocks.front();
  const graph::BlockedCsr bt = graph::build_blocked_transpose_spans(
      block.indptr, block.indices, block.values, block.num_src());
  {
    const std::int64_t d = 16;
    const Tensor grad = random_tensor({block.num_dst, d}, 22);
    Tensor xg = Tensor::zeros({block.num_src(), d});
    bench::KernelResult gather{"block_spmm_bwd", "transpose",
                               "dst=" + std::to_string(block.num_dst) +
                                   ",src=" + std::to_string(block.num_src()) +
                                   ",nnz=" +
                                   std::to_string(block.num_edges()) +
                                   ",d=" + std::to_string(d)};
    gather.flops = 2.0 * block.num_edges() * d;
    gather.bytes = block.num_edges() *
                       (sizeof(std::int32_t) + sizeof(float) +
                        static_cast<double>(d) * sizeof(float)) +
                   2.0 * block.num_src() * d * sizeof(float);
    bench::time_kernel(
        gather, [&] { ag::spmm_blocked_accumulate(bt, grad, xg); },
        cfg.min_iters, cfg.min_seconds);
    report.add(gather);
  }

  // The build the block_spmm forward actually pays: no edge positions
  // (the SpMM gather never reads them).
  bench::KernelResult build{"block_transpose_build", "counting-sort",
                            "dst=" + std::to_string(block.num_dst) +
                                ",src=" + std::to_string(block.num_src()) +
                                ",nnz=" + std::to_string(block.num_edges())};
  build.bytes = block.num_edges() *
                (sizeof(std::int32_t) + sizeof(float) +
                 sizeof(std::uint16_t));
  bench::time_kernel(
      build,
      [&] {
        graph::build_blocked_transpose_spans(
            block.indptr, block.indices, block.values, block.num_src(),
            /*force_wide=*/false, /*with_epos=*/false);
      },
      cfg.min_iters, cfg.min_seconds);
  report.add(build);
}

void bench_exec_forward(const BenchConfig& cfg,
                        bench::KernelReport& report) {
  // End-to-end compiled-forward records per architecture on the shared
  // power-law graph: the tape forward under NoGradGuard (what evaluation
  // sweeps pay — a Value node, fresh output tensor and closure per op)
  // vs "exec", the infer-mode Executor over the same LayerPlan
  // (plan-declared workspaces, in-place epilogues, GAT alpha-skip
  // lowering). Same kernels underneath, bit-identical logits — the delta
  // is pure execution-model overhead, which is exactly what the exec
  // layer exists to remove from the serving path. The tape twin carries
  // the variant name "fused" so the exec record is gated through the
  // speedup_vs_fused CI invocation (relative tolerance, no absolute
  // floor): the ratio is small by design at kernel-dominated shapes —
  // GAT measures ~1.03x, all attention — and the 1.15x floor of the
  // speedup_vs_naive gate is meant for optimised-kernel-vs-seed records,
  // not an execution-model delta.
  const Dataset data = power_law_dataset(cfg.smoke);
  const std::string graph_shape = "n=" + std::to_string(data.num_nodes()) +
                                  ",nnz=" + std::to_string(data.num_edges());
  struct ArchCase {
    Arch arch;
    const char* tag;
  };
  for (const ArchCase c : {ArchCase{Arch::kGcn, "gcn"},
                           ArchCase{Arch::kSage, "sage"},
                           ArchCase{Arch::kGat, "gat"}}) {
    ModelConfig mcfg;
    mcfg.arch = c.arch;
    mcfg.in_dim = data.feature_dim();
    mcfg.out_dim = data.num_classes;
    mcfg.num_layers = 2;
    mcfg.hidden_dim = c.arch == Arch::kGat ? 16 : 64;
    mcfg.heads = 4;
    const GnnModel model(mcfg);
    Rng rng(31);
    const ParamStore params = model.init_params(rng);
    const auto ctx = std::make_shared<const GraphContext>(data.graph, c.arch);
    const exec::LayerPlan& plan = ctx->layer_plan(mcfg);
    exec::Executor executor(plan, params);
    Tensor out = Tensor::empty({data.num_nodes(), mcfg.out_dim});
    const ag::Value features = ag::constant(data.features);
    const ParamMap leaves = as_leaves(params, /*requires_grad=*/false);
    const std::string shape = graph_shape + ",arch=" + c.tag;

    bench::KernelResult tape{"full_forward", "fused", shape};
    bench::time_kernel(
        tape,
        [&] {
          ag::NoGradGuard guard;
          exec::run_train(plan, features, leaves, /*training=*/false,
                          nullptr);
        },
        cfg.min_iters, cfg.min_seconds);
    report.add(tape);

    bench::KernelResult ex{"full_forward", "exec", shape};
    bench::time_kernel(
        ex, [&] { executor.run_full(data.features, out); }, cfg.min_iters,
        cfg.min_seconds);
    report.add(ex);

    // The same LayerPlan compiled at fp16 storage: half features, half
    // weight panels and half inter-layer slabs, fp32 accumulate. Gated
    // through speedup_vs_fused like the exec record (relative to the tape
    // twin — no absolute floor; the fp16 gain over exec itself is the
    // serving artifact's speedup_vs_fp32 story).
    const exec::LayerPlan& plan16 = ctx->layer_plan(mcfg, Precision::kFp16);
    exec::Executor executor16(plan16, params);
    const HalfBuffer hfeatures =
        HalfBuffer::quantize(data.features, Precision::kFp16);
    bench::KernelResult ex16{"full_forward", "exec_fp16", shape};
    bench::time_kernel(
        ex16, [&] { executor16.run_full(hfeatures, out); }, cfg.min_iters,
        cfg.min_seconds);
    report.add(ex16);
  }
}

void bench_gather(const BenchConfig& cfg, bench::KernelReport& report) {
  // The serving engine's row lookups: gathering scattered rows out of a
  // resident matrix (cached logits table, feature matrix). fp32 is a row
  // memcpy; fp16 reads 16-bit rows and widens on the copy (F16C when the
  // CPU has it) — half the read traffic against an extra convert. No
  // naive/fused twin, so these records ride ungated in the artifact; the
  // end-to-end effect is gated via the serving speedup_vs_fp32 records.
  const std::int64_t rows = cfg.smoke ? 4096 : 262144;
  const std::int64_t d = 64;
  const Tensor src = random_tensor({rows, d}, 23);
  const HalfBuffer hsrc = HalfBuffer::quantize(src, Precision::kFp16);
  Rng rng(29);
  std::vector<std::int64_t> ids(cfg.smoke ? 1024 : 65536);
  for (auto& id : ids) {
    id = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(rows)));
  }
  Tensor out = Tensor::empty({static_cast<std::int64_t>(ids.size()), d});
  const std::string shape = "rows=" + std::to_string(rows) +
                            ",ids=" + std::to_string(ids.size()) +
                            ",d=" + std::to_string(d);
  const double out_bytes =
      static_cast<double>(ids.size()) * d * sizeof(float);

  bench::KernelResult fp32{"gather_rows", "fp32", shape};
  fp32.bytes = static_cast<double>(ids.size()) * d * sizeof(float) +
               out_bytes;
  bench::time_kernel(
      fp32,
      [&] {
        ops::gather_rows_into(src, std::span<const std::int64_t>(ids), out);
      },
      cfg.min_iters, cfg.min_seconds);
  report.add(fp32);

  bench::KernelResult fp16{"gather_rows", "fp16", shape};
  fp16.bytes =
      static_cast<double>(ids.size()) * d * sizeof(std::uint16_t) + out_bytes;
  bench::time_kernel(
      fp16,
      [&] {
        ops::gather_rows_into(hsrc, std::span<const std::int64_t>(ids), out);
      },
      cfg.min_iters, cfg.min_seconds);
  report.add(fp16);

  // Half-to-half (subgraph input-row gather in half mode): 16-bit memcpy.
  HalfBuffer hout =
      HalfBuffer::empty({static_cast<std::int64_t>(ids.size()), d},
                        Precision::kFp16);
  bench::KernelResult fp16s{"gather_rows", "fp16_store", shape};
  fp16s.bytes =
      2.0 * static_cast<double>(ids.size()) * d * sizeof(std::uint16_t);
  bench::time_kernel(
      fp16s,
      [&] {
        ops::gather_rows_into(hsrc, std::span<const std::int64_t>(ids), hout);
      },
      cfg.min_iters, cfg.min_seconds);
  report.add(fp16s);
}

void bench_elementwise(const BenchConfig& cfg, bench::KernelReport& report) {
  const std::int64_t numel = cfg.smoke ? (1 << 14) : (1 << 22);
  const Tensor a = random_tensor({numel}, 9);
  const Tensor b = random_tensor({numel}, 10);
  const std::string shape = "numel=" + std::to_string(numel);

  bench::KernelResult relu{"relu", "parallel", shape};
  relu.bytes = 2.0 * numel * sizeof(float);
  bench::time_kernel(relu, [&] { ops::relu(a); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(relu);

  bench::KernelResult mul{"mul", "parallel", shape};
  mul.flops = static_cast<double>(numel);
  mul.bytes = 3.0 * numel * sizeof(float);
  bench::time_kernel(mul, [&] { ops::mul(a, b); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(mul);

  bench::KernelResult sum{"sum", "compensated", shape};
  sum.flops = static_cast<double>(numel);
  sum.bytes = static_cast<double>(numel) * sizeof(float);
  float sink = 0.0f;
  bench::time_kernel(sum, [&] { sink += ops::sum(a); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(sum);

  bench::KernelResult dot{"dot", "compensated", shape};
  dot.flops = 2.0 * numel;
  dot.bytes = 2.0 * numel * sizeof(float);
  bench::time_kernel(dot, [&] { sink += ops::dot(a, b); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(dot);
  if (sink == 12345.6789f) std::printf("-");  // keep the sums live

  const std::int64_t t = cfg.smoke ? 128 : 2048;
  const Tensor m = random_tensor({t, t}, 11);
  bench::KernelResult tr{"transpose", "tiled",
                         "m=" + std::to_string(t) + ",n=" + std::to_string(t)};
  tr.bytes = 2.0 * t * t * sizeof(float);
  bench::time_kernel(tr, [&] { ops::transpose(m); }, cfg.min_iters,
                     cfg.min_seconds);
  report.add(tr);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.min_iters = 2;
      cfg.min_seconds = 0.0;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      cfg.out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::KernelReport report(cfg.smoke ? "smoke" : "full");
  bench_gemm(cfg, report);
  bench_spmm(cfg, report);
  bench_gat(cfg, report);
  bench_block_spmm_bwd(cfg, report);
  bench_exec_forward(cfg, report);
  bench_gather(cfg, report);
  bench_elementwise(cfg, report);
  report.compute_speedups();
  report.print_table();
  if (!report.write_json(cfg.out)) return 1;
  std::printf("wrote %s\n", cfg.out.c_str());
  return 0;
}
