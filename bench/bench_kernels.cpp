// Kernel microbenchmarks (google-benchmark): the primitives every souping
// strategy is built from — GEMM, SpMM, GAT attention forward/backward,
// soup mixing, partitioning and subgraph extraction.
#include <benchmark/benchmark.h>

#include "ag/graph_ops.hpp"
#include "ag/loss.hpp"
#include "ag/ops.hpp"
#include "core/alpha.hpp"
#include "graph/generator.hpp"
#include "graph/normalize.hpp"
#include "graph/subgraph.hpp"
#include "partition/partitioner.hpp"
#include "partition/union_subgraph.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace gsoup;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::empty(std::move(shape));
  init::normal(t, rng, 0.0f, 1.0f);
  return t;
}

Dataset bench_graph(std::int64_t n, double deg) {
  SyntheticSpec spec;
  spec.num_nodes = n;
  spec.avg_degree = deg;
  spec.num_classes = 8;
  spec.feature_dim = 64;
  spec.seed = 3;
  return generate_dataset(spec);
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Spmm(benchmark::State& state) {
  const auto n = state.range(0);
  static Dataset data = bench_graph(8000, 20);
  const Csr norm = gcn_normalize(data.graph);
  const Csr norm_t = norm.transpose().graph;
  auto x = ag::constant(random_tensor({data.num_nodes(), n}, 4));
  ag::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::spmm(norm, norm_t, x));
  }
  state.SetItemsProcessed(state.iterations() * data.num_edges() * n);
}
BENCHMARK(BM_Spmm)->Arg(16)->Arg(64)->Arg(128);

void BM_GatAttentionForward(benchmark::State& state) {
  const auto heads = state.range(0);
  static Dataset data = bench_graph(8000, 20);
  static CsrTranspose gt = data.graph.transpose();
  const std::int64_t d = 16;
  auto h = ag::constant(random_tensor({data.num_nodes(), heads * d}, 5));
  auto sd = ag::constant(random_tensor({data.num_nodes(), heads}, 6));
  auto ss = ag::constant(random_tensor({data.num_nodes(), heads}, 7));
  ag::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ag::gat_attention(data.graph, gt, h, sd, ss, heads, 0.2f));
  }
  state.SetItemsProcessed(state.iterations() * data.num_edges() * heads * d);
}
BENCHMARK(BM_GatAttentionForward)->Arg(1)->Arg(4);

void BM_GatAttentionTrainStep(benchmark::State& state) {
  static Dataset data = bench_graph(4000, 15);
  static CsrTranspose gt = data.graph.transpose();
  const std::int64_t heads = 4, d = 16;
  for (auto _ : state) {
    auto h = ag::make_leaf(random_tensor({data.num_nodes(), heads * d}, 8),
                           true);
    auto sd =
        ag::make_leaf(random_tensor({data.num_nodes(), heads}, 9), true);
    auto ss =
        ag::make_leaf(random_tensor({data.num_nodes(), heads}, 10), true);
    auto out = ag::gat_attention(data.graph, gt, h, sd, ss, heads, 0.2f);
    auto loss = ag::sum(out);
    ag::backward(loss);
    benchmark::DoNotOptimize(h->grad.data());
  }
}
BENCHMARK(BM_GatAttentionTrainStep);

void BM_SoupMixing(benchmark::State& state) {
  const auto n_ingredients = state.range(0);
  // 2-layer GCN-sized parameter set.
  std::vector<Ingredient> ingredients(n_ingredients);
  for (std::int64_t i = 0; i < n_ingredients; ++i) {
    ingredients[i].id = i;
    ingredients[i].params.add("layers.0.weight",
                              random_tensor({64, 64}, 20 + i), 0);
    ingredients[i].params.add("layers.1.weight",
                              random_tensor({64, 40}, 40 + i), 1);
  }
  Rng rng(1);
  const AlphaSet alphas(ingredients.front().params, n_ingredients,
                        AlphaGranularity::kLayer, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alphas.build_soup(ingredients));
  }
}
BENCHMARK(BM_SoupMixing)->Arg(8)->Arg(32)->Arg(50);

void BM_MultilevelPartition(benchmark::State& state) {
  static Dataset data = bench_graph(8000, 15);
  PartitionOptions opt;
  opt.num_parts = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multilevel_partition(data.graph, opt, data.val_mask));
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(8)->Arg(32);

void BM_PartitionUnionSubgraph(benchmark::State& state) {
  static Dataset data = bench_graph(8000, 15);
  PartitionOptions opt;
  opt.num_parts = 32;
  static Partitioning parts =
      multilevel_partition(data.graph, opt, data.val_mask);
  Rng rng(2);
  for (auto _ : state) {
    const auto selected = sample_partitions(32, state.range(0), rng);
    benchmark::DoNotOptimize(
        partition_union_subgraph(data, parts, selected));
  }
}
BENCHMARK(BM_PartitionUnionSubgraph)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
