// Fig. 3 — comparison of souping strategies against the ingredient test
// accuracy distribution, per dataset. The paper plots soups against their
// ingredients' spread; here each row gives the ingredient min/mean/max and
// every strategy's soup score, plus an ASCII strip chart per dataset.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/diversity.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

namespace {

/// Render a [lo, hi] strip with markers for ingredients span and soups.
std::string strip_chart(double ing_min, double ing_max, double us, double gis,
                        double ls, double pls) {
  constexpr int kWidth = 56;
  const double lo =
      std::min({ing_min, us, gis, ls, pls}) - 0.005;
  const double hi = std::max({ing_max, us, gis, ls, pls}) + 0.005;
  auto pos = [&](double v) {
    return std::clamp(static_cast<int>((v - lo) / (hi - lo) * (kWidth - 1)),
                      0, kWidth - 1);
  };
  std::string strip(kWidth, ' ');
  for (int p = pos(ing_min); p <= pos(ing_max); ++p) strip[p] = '-';
  strip[pos(us)] = 'U';
  strip[pos(gis)] = 'G';
  strip[pos(ls)] = 'L';
  strip[pos(pls)] = 'P';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%% |", lo * 100);
  std::string out = buf;
  out += strip;
  std::snprintf(buf, sizeof(buf), "| %5.1f%%", hi * 100);
  out += buf;
  return out;
}

}  // namespace

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();
  const auto cells = bench::run_matrix(scale);

  Table table(
      "Fig. 3: Soups vs ingredient distribution (test accuracy %, per "
      "dataset/architecture)");
  table.set_header({"Model", "Dataset", "Ing. min", "Ing. mean", "Ing. max",
                    "US", "GIS", "LS", "PLS"});
  for (const auto& cell : cells) {
    table.add_row({cell.arch, cell.dataset,
                   Table::fmt(cell.ingredients_test_min * 100),
                   Table::fmt(cell.ingredients_test_mean * 100),
                   Table::fmt(cell.ingredients_test_max * 100),
                   Table::fmt(cell.summarize("US").test_mean * 100),
                   Table::fmt(cell.summarize("GIS").test_mean * 100),
                   Table::fmt(cell.summarize("LS").test_mean * 100),
                   Table::fmt(cell.summarize("PLS").test_mean * 100)});
  }
  table.print();

  std::printf("\nStrip charts (ingredient span '----', U=US G=GIS L=LS "
              "P=PLS):\n");
  for (const auto& cell : cells) {
    std::printf("%-10s %-14s %s\n", cell.arch.c_str(), cell.dataset.c_str(),
                strip_chart(cell.ingredients_test_min,
                            cell.ingredients_test_max,
                            cell.summarize("US").test_mean,
                            cell.summarize("GIS").test_mean,
                            cell.summarize("LS").test_mean,
                            cell.summarize("PLS").test_mean)
                    .c_str());
  }

  // Diversity companion (§V-A / §VIII): ingredient spread per cell. The
  // paper traces the US-wins anomaly on Reddit/GAT to unusually LOW
  // ingredient diversity; this table makes the statistic visible.
  Table div("Ingredient diversity per cell (paper §V-A / §VIII)");
  div.set_header({"Model", "Dataset", "param distance",
                  "pred. disagreement %", "acc stddev %"});
  for (const Arch arch : bench::paper_archs()) {
    for (int preset = 0; preset < 4; ++preset) {
      const Dataset data = bench::make_dataset(preset, scale);
      const GnnModel model(bench::cell_model_config(arch, data));
      const GraphContext ctx(data.graph, arch);
      const auto ingredients =
          bench::get_ingredients(model, ctx, data, scale);
      const DiversityReport report =
          ingredient_diversity(model, ctx, data, ingredients);
      div.add_row({arch_name(arch), data.name,
                   Table::fmt(report.parameter_distance, 3),
                   Table::fmt(report.prediction_disagreement * 100, 2),
                   Table::fmt(report.accuracy_stddev * 100, 2)});
    }
  }
  div.print();
  return 0;
}
