// Table III — souping wall time (seconds) for US / GIS / LS / PLS across
// the experiment matrix. Paper shape: US trivially fastest (no forward
// passes); LS and PLS both substantially faster than GIS's exhaustive
// O(N·g·F_v) ratio sweep.
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();
  const auto cells = bench::run_matrix(scale);

  Table table("Table III: Souping time (seconds) [lower is better]");
  table.set_header({"Model", "Dataset", "US", "GIS", "LS (ours)",
                    "PLS (ours)"});
  for (const auto& cell : cells) {
    const auto us = cell.summarize("US");
    const auto gis = cell.summarize("GIS");
    const auto ls = cell.summarize("LS");
    const auto pls = cell.summarize("PLS");
    table.add_row({cell.arch, cell.dataset,
                   Table::fmt_pm(us.seconds_mean, us.seconds_std, 3),
                   Table::fmt_pm(gis.seconds_mean, gis.seconds_std, 3),
                   Table::fmt_pm(ls.seconds_mean, ls.seconds_std, 3),
                   Table::fmt_pm(pls.seconds_mean, pls.seconds_std, 3)});
  }
  table.print();
  std::printf("\nGIS granularity g=%lld, LS epochs=%lld, PLS epochs=%lld "
              "(R/K = %lld/%lld).\n",
              static_cast<long long>(scale.gis_granularity),
              static_cast<long long>(scale.ls_epochs),
              static_cast<long long>(scale.pls_epochs),
              static_cast<long long>(scale.pls_budget),
              static_cast<long long>(scale.pls_parts));
  return 0;
}
