// Table II — test accuracy across datasets and architectures for
// Ingredients (mean ± std) vs US / GIS / LS / PLS. The paper's headline
// shape: informed strategies beat US almost everywhere; LS/PLS match or
// beat GIS on the larger, denser presets; small noisy presets (Flickr-like)
// are the hard regime for learned souping.
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();
  const auto cells = bench::run_matrix(scale);

  Table table("Table II: Accuracy (%) across datasets [higher is better]");
  table.set_header({"Model", "Dataset", "Ingredients", "US", "GIS",
                    "LS (ours)", "PLS (ours)"});
  for (const auto& cell : cells) {
    const auto us = cell.summarize("US");
    const auto gis = cell.summarize("GIS");
    const auto ls = cell.summarize("LS");
    const auto pls = cell.summarize("PLS");
    table.add_row({cell.arch, cell.dataset,
                   Table::fmt_pm(cell.ingredients_test_mean * 100,
                                 cell.ingredients_test_std * 100),
                   Table::fmt_pm(us.test_mean * 100, us.test_std * 100),
                   Table::fmt_pm(gis.test_mean * 100, gis.test_std * 100),
                   Table::fmt_pm(ls.test_mean * 100, ls.test_std * 100),
                   Table::fmt_pm(pls.test_mean * 100, pls.test_std * 100)});
  }
  table.print();
  std::printf("\n%lld ingredients per cell, %lld soups averaged "
              "(GSOUP_INGREDIENTS / GSOUP_TRIALS to change).\n",
              static_cast<long long>(scale.ingredients),
              static_cast<long long>(scale.trials));
  return 0;
}
