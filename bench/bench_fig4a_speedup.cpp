// Fig. 4a — relative souping speedup over the GIS baseline (higher is
// better; GIS = 1.0x). Paper shape: US far fastest; LS and PLS both above
// 1x everywhere, with the largest gains on the biggest graphs.
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  const auto scale = bench::Scale::from_env();
  const auto cells = bench::run_matrix(scale);

  Table table("Fig. 4a: Relative speedup over GIS [higher is better]");
  table.set_header({"Model", "Dataset", "US", "GIS", "LS (ours)",
                    "PLS (ours)"});
  double best_ls = 0, best_pls = 0;
  std::string best_ls_cell, best_pls_cell;
  for (const auto& cell : cells) {
    const double gis = cell.summarize("GIS").seconds_mean;
    const double us = gis / std::max(1e-9, cell.summarize("US").seconds_mean);
    const double ls = gis / std::max(1e-9, cell.summarize("LS").seconds_mean);
    const double pls =
        gis / std::max(1e-9, cell.summarize("PLS").seconds_mean);
    if (ls > best_ls) {
      best_ls = ls;
      best_ls_cell = cell.arch + "/" + cell.dataset;
    }
    if (pls > best_pls) {
      best_pls = pls;
      best_pls_cell = cell.arch + "/" + cell.dataset;
    }
    table.add_row({cell.arch, cell.dataset, Table::fmt(us, 1) + "x", "1.0x",
                   Table::fmt(ls, 2) + "x", Table::fmt(pls, 2) + "x"});
  }
  table.print();
  std::printf("\nBest LS speedup: %.2fx (%s); best PLS speedup: %.2fx "
              "(%s). Paper reports up to 2.1x (LS) and 24.5x (PLS) at "
              "N=50 ingredients.\n",
              best_ls, best_ls_cell.c_str(), best_pls,
              best_pls_cell.c_str());
  return 0;
}
