// LS design ablations (paper §III-B / §VI-A): alpha granularity (the
// paper's per-layer ratios vs per-tensor vs one global vector), optimiser
// (the paper's SGD+cosine vs the LLM-default AdamW), learning-rate
// sensitivity ("relatively large base learning rates often yielded the
// best results"), and early stopping (keep-best), on the arxiv-like GCN
// cell.
#include <cstdio>

#include "core/learned.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;
  auto scale = bench::Scale::from_env();
  const int preset = 1;  // arxiv-like
  const Arch arch = Arch::kGcn;

  const Dataset data = bench::make_dataset(preset, scale);
  const GnnModel model(bench::cell_model_config(arch, data));
  const GraphContext ctx(data.graph, arch);
  const auto ingredients = bench::get_ingredients(model, ctx, data, scale);
  const SoupContext sctx{model, ctx, data, ingredients};

  auto run = [&](const char* label, LearnedSoupConfig cfg, Table& table) {
    cfg.epochs = scale.ls_epochs;
    LearnedSouper souper(cfg);
    const SoupReport report = run_souper(souper, sctx);
    table.add_row({label, Table::fmt(report.test_acc * 100),
                   Table::fmt(report.val_acc * 100),
                   Table::fmt(report.seconds, 3)});
  };

  {
    Table table("Ablation: alpha granularity (paper uses per-layer, Eq. 3)");
    table.set_header({"granularity", "test acc %", "val acc %", "time (s)"});
    LearnedSoupConfig cfg;
    cfg.granularity = AlphaGranularity::kLayer;
    run("per-layer (paper)", cfg, table);
    cfg.granularity = AlphaGranularity::kTensor;
    run("per-tensor", cfg, table);
    cfg.granularity = AlphaGranularity::kGlobal;
    run("global", cfg, table);
    table.print();
  }
  {
    Table table("Ablation: optimiser (paper: SGD+cosine, 'rather than "
                "AdamW commonly used in LLMs')");
    table.set_header({"optimiser", "test acc %", "val acc %", "time (s)"});
    LearnedSoupConfig cfg;
    cfg.optimizer = OptimizerKind::kSgd;
    cfg.lr = 0.2;
    run("SGD + cosine (paper)", cfg, table);
    cfg.optimizer = OptimizerKind::kAdamW;
    cfg.lr = 0.02;
    run("AdamW + cosine", cfg, table);
    table.print();
  }
  {
    Table table("Ablation: base learning rate sensitivity (§VI-A)");
    table.set_header({"lr", "test acc %", "val acc %", "time (s)"});
    for (const double lr : {0.01, 0.05, 0.2, 0.5, 1.0}) {
      LearnedSoupConfig cfg;
      cfg.lr = lr;
      run(Table::fmt(lr, 2).c_str(), cfg, table);
    }
    table.print();
  }
  {
    Table table("Ablation: early stopping / keep-best (paper §VIII "
                "future work)");
    table.set_header({"variant", "test acc %", "val acc %", "time (s)"});
    LearnedSoupConfig cfg;
    run("final-epoch alphas (paper)", cfg, table);
    cfg.keep_best = true;
    cfg.eval_every = 5;
    run("keep best-val alphas", cfg, table);
    table.print();
  }
  {
    Table table("Extension: ingredient drop-out (paper §VIII — hard-zero "
                "low-weight ingredients)");
    table.set_header({"variant", "test acc %", "val acc %", "time (s)"});
    LearnedSoupConfig cfg;
    run("softmax only (paper)", cfg, table);
    cfg.prune_threshold = 0.3;
    run("drop-out at w < 0.3/N", cfg, table);
    cfg.prune_threshold = 0.7;
    run("drop-out at w < 0.7/N", cfg, table);
    table.print();
  }
  std::printf("\nAll variants share %lld epochs on the same cached "
              "ingredient set.\n",
              static_cast<long long>(scale.ls_epochs));
  return 0;
}
