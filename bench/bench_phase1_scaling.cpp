// Phase-1 scaling (paper Eq. 1/2): zero-communication ingredient training
// with a dynamic task queue should scale as T_total ≈ (N/W) · T_single.
// Sweeps worker count W and ingredient count N on a small GCN cell and
// compares measured wall time against the model's prediction.
#include <cstdio>

#include "graph/generator.hpp"
#include "harness/experiment.hpp"
#include "train/ingredient_farm.hpp"
#include "util/table.hpp"

int main() {
  using namespace gsoup;

  SyntheticSpec spec;
  spec.num_nodes = 1200;
  spec.num_classes = 6;
  spec.avg_degree = 12;
  spec.homophily = 0.75;
  spec.feature_dim = 32;
  spec.seed = 17;
  const Dataset data = generate_dataset(spec);

  ModelConfig cfg;
  cfg.arch = Arch::kGcn;
  cfg.in_dim = data.feature_dim();
  cfg.hidden_dim = 32;
  cfg.out_dim = data.num_classes;
  const GnnModel model(cfg);
  const GraphContext ctx(data.graph, Arch::kGcn);

  Table table("Phase-1 scaling: T_total vs (N/W)*T_single (Eq. 1)");
  table.set_header({"N (ingredients)", "W (workers)", "wall (s)",
                    "sum T_single (s)", "predicted (s)", "efficiency"});

  // Reference single-ingredient time from the serial run.
  double t_single = 0.0;
  for (const std::int64_t w : {1LL, 2LL, 4LL}) {
    for (const std::int64_t n : {4LL, 8LL}) {
      FarmConfig farm;
      farm.num_ingredients = n;
      farm.num_workers = w;
      farm.train.epochs = 12;
      farm.train.schedule.base_lr = 0.02;
      farm.train.seed = 3;
      farm.init_seed = 9;
      const FarmResult result = train_ingredients(model, ctx, data, farm);
      const double mean_single =
          result.total_train_seconds / static_cast<double>(n);
      if (w == 1 && n == 4) t_single = mean_single;
      const double predicted =
          std::ceil(static_cast<double>(n) / static_cast<double>(w)) *
          (t_single > 0 ? t_single : mean_single);
      const double efficiency =
          result.total_train_seconds /
          (result.wall_seconds * static_cast<double>(w));
      table.add_row({std::to_string(n), std::to_string(w),
                     Table::fmt(result.wall_seconds, 3),
                     Table::fmt(result.total_train_seconds, 3),
                     Table::fmt(predicted, 3),
                     Table::fmt(efficiency * 100, 1) + "%"});
    }
  }
  table.print();
  std::printf("\nEfficiency = sum of per-ingredient time / (wall * W). "
              "Zero-communication training keeps it near 100%% until "
              "workers exceed physical cores (this machine has 2).\n");
  return 0;
}
